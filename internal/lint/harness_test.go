package lint

// Mini golden-test harness in the spirit of x/tools' analysistest
// (which we cannot depend on): each testdata/src/<case> directory is a
// standalone package; comments of the form
//
//	// want "regexp"
//
// declare that a diagnostic matching the regexp must be reported on
// that line.  The harness fails on missing wants, unexpected
// diagnostics, and regexps that do not match what was reported — so any
// drift in an analyzer's output breaks its golden test.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantArgRe accepts either Go-string or backtick quoting for the
// expectation regexps; backticks avoid double-escaping.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runGolden loads testdata/src/<name> as one package, runs the
// package-local analyzers, and checks the diagnostics against the
// package's // want comments.
func runGolden(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags := Run(pkg, analyzers)
	checkWants(t, []*Package{pkg}, diags)
}

// runGoldenProgram loads testdata/prog/<name> as a multi-package
// program (each subdirectory one package, importable by directory
// name), runs the full-program analyzers over its call graph, and
// checks the diagnostics against // want comments in any package.
func runGoldenProgram(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "prog", name)
	pkgs, err := LoadDirProgram(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	prog := NewProgram(pkgs)
	diags := prog.Run(analyzers)
	checkWants(t, pkgs, diags)
}

// checkWants matches reported diagnostics against the // want comments
// across all fixture packages: every want must be hit on its line, and
// every diagnostic must be wanted.
func checkWants(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	var wants []*wantDiag
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.ImportPath, e)
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					args := wantArgRe.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					for _, a := range args {
						expr := a[1]
						if expr == "" {
							expr = a[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						}
						wants = append(wants, &wantDiag{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Rule+": "+d.Msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re.String())
		}
	}
	if t.Failed() {
		t.Logf("all diagnostics:\n%s", FormatDiags(diags))
	}
}

func TestGoldenDeterminism(t *testing.T)      { runGolden(t, "determinism", Determinism) }
func TestGoldenDeterminismScope(t *testing.T) { runGolden(t, "determinism_scope", Determinism) }
func TestGoldenFloatEq(t *testing.T)          { runGolden(t, "floateq", FloatEq) }
func TestGoldenCtxHygiene(t *testing.T)       { runGolden(t, "ctxhygiene", CtxHygiene) }
func TestGoldenLockDiscipline(t *testing.T)   { runGolden(t, "lockdiscipline", LockDiscipline) }
func TestGoldenErrDiscard(t *testing.T)       { runGolden(t, "errdiscard", ErrDiscard) }
func TestGoldenErrDiscardScope(t *testing.T)  { runGolden(t, "errdiscard_scope", ErrDiscard) }

func TestGoldenGoroutineLeak(t *testing.T) { runGoldenProgram(t, "goroutineleak", GoroutineLeak) }
func TestGoldenLockOrder(t *testing.T)     { runGoldenProgram(t, "lockorder", LockOrder) }
func TestGoldenDetFlow(t *testing.T)       { runGoldenProgram(t, "detflow", DetFlow) }
func TestGoldenHotAlloc(t *testing.T)      { runGoldenProgram(t, "hotalloc", HotAlloc) }

// TestAnalyzerNamesUnique guards the suppression namespace.
func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if fmt.Sprint(len(seen)) != "9" {
		t.Errorf("expected 9 analyzers, have %d", len(seen))
	}
}
