// Package timeutil is the non-deterministic helper side of the detflow
// fixture: some of its returns derive from wall-clock reads or map
// iteration order, some are normalized or order-insensitive.
package timeutil

import (
	"sort"
	"time"
)

// Stamp returns a wall-clock tag, laundered through a helper.
func Stamp() int64 {
	return nanos()
}

func nanos() int64 {
	return time.Now().UnixNano()
}

// Keys returns m's keys in map-iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the map-order taint is normalized
// away before the value escapes.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count is order-insensitive even though it ranges over a map.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// RawOrder returns keys unsorted; the in-place reasoned ignore keeps
// the source out of interprocedural summaries.
func RawOrder(m map[string]int) []string {
	var out []string
	//lint:ignore detflow callers normalize the order before any deterministic use
	for k := range m {
		out = append(out, k)
	}
	return out
}
