// Package nsga2 is in the deterministic scope: values it consumes must
// not derive from wall clocks or map iteration order.
package nsga2

import "timeutil"

// Seed consumes a wall-clock-derived helper return.
func Seed() int64 {
	return timeutil.Stamp() // want `detflow: call to timeutil\.Stamp returns a wall-clock-derived value`
}

// Raw consumes map-ordered keys straight from the helper.
func Raw(m map[string]int) []string {
	return timeutil.Keys(m) // want `detflow: call to timeutil\.Keys returns a map-iteration-ordered value`
}

// Names is deterministic: the helper sorts before returning.
func Names(m map[string]int) []string {
	return timeutil.SortedKeys(m)
}

// Size is order-insensitive.
func Size(m map[string]int) int {
	return timeutil.Count(m)
}

// Normalized consumes the suppressed helper; the reasoned ignore at the
// source keeps the summary clean.
func Normalized(m map[string]int) []string {
	return timeutil.RawOrder(m)
}
