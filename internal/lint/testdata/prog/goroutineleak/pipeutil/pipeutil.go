// Package pipeutil is the cross-package half of the goroutineleak
// fixture: its Pump blocks on a channel nobody in the program drains.
package pipeutil

// Events is an unbuffered fan-in with no consumer anywhere.
var Events = make(chan int)

// Pump publishes one event; with no consumer it parks forever.
func Pump() {
	Events <- 1
}
