// Package service is in the goroutineleak scope: every spawn must have
// a reachable teardown story.
package service

import (
	"context"

	"pipeutil"
)

// Worker fans results out without a consumer or buffer: the spawned
// goroutine parks on the send forever once the caller returns.
func Worker() {
	results1 := make(chan int)
	go func() { // want `goroutineleak: goroutine may block forever on a send to results1`
		results1 <- 1
	}()
}

// Buffered spawns are fine: the send lands in the buffer.
func Buffered() {
	results2 := make(chan int, 4)
	go func() {
		results2 <- 1
	}()
}

// Drained spawns are fine: a range loop consumes the channel.
func Drained() {
	results3 := make(chan int)
	go func() {
		results3 <- 1
	}()
	for range results3 {
	}
}

// Collector blocks on a receive nobody will ever satisfy.
func Collector() {
	inbox1 := make(chan int)
	go func() { // want `goroutineleak: goroutine may block forever on a receive from inbox1`
		<-inbox1
	}()
}

// Closed receives terminate when the producer closes.
func Closed() {
	inbox2 := make(chan int)
	go func() {
		<-inbox2
	}()
	close(inbox2)
}

// CtxGuarded selects against ctx.Done, the canonical teardown.
func CtxGuarded(ctx context.Context, inbox3 chan int) {
	go func() {
		select {
		case <-inbox3:
		case <-ctx.Done():
		}
	}()
}

// Remote spawns a cross-package pump whose blocking send lives in
// pipeutil — the leak must be found through the call graph and reported
// at this spawn with the remote site named.
func Remote() {
	go pipeutil.Pump() // want `goroutineleak: goroutine may block forever on a send to Events`
}

// Semaphore releases the token the spawner deposited before the spawn;
// the deferred receive from the buffered channel cannot block.
func Semaphore() {
	tokens := make(chan struct{}, 2)
	tokens <- struct{}{}
	go func() {
		defer func() { <-tokens }()
	}()
}

// Acknowledged documents its teardown story with a reasoned ignore.
func Acknowledged(acks chan int) {
	//lint:ignore goroutineleak the caller drains acks in its Close path
	go func() {
		acks <- 1
	}()
}
