// Package hotpath exercises the //lint:hot contract: annotated
// functions and their transitive callees must be allocation-free in
// steady state.
package hotpath

import "mathutil"

// Scratch is the reusable per-worker buffer.
type Scratch struct {
	buf []float64
	out []float64
}

var debugHook func()

//lint:hot
func (s *Scratch) Step(x []float64) float64 {
	tmp := make([]float64, len(x)) // want `hotalloc: make in //lint:hot hotpath\.Scratch\.Step`
	copy(tmp, x)
	s.buf = append(s.buf, x...) // field-backed buffer: amortized, clean
	return mathutil.Scale(tmp, 2)
}

//lint:hot
func (s *Scratch) Grow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) // capacity guard: amortized, clean
	}
}

//lint:hot
func (s *Scratch) Deep(x []float64) float64 {
	return mathutil.Copied(x) // the finding lands at the callee's make
}

//lint:hot
func (s *Scratch) Reset() {
	out := s.out[:0]
	for _, v := range s.buf {
		out = append(out, v) // re-rooted local: amortized, clean
	}
	s.out = out
}

//lint:hot
func Trace(step int) {
	record(step) // want `hotalloc: argument step boxes into an interface`
}

func record(v interface{}) { _ = v }

//lint:hot
func Arm(n int) {
	debugHook = func() { _ = n } // want `hotalloc: closure in //lint:hot hotpath\.Arm`
}

//lint:hot // want `hotalloc: //lint:hot is not attached to a function declaration`
var Budget = 64
