// Package mathutil is the cross-package half of the hotalloc fixture:
// Copied allocates and is pulled into a hot closure by hotpath.
package mathutil

// Scale multiplies in place and sums — allocation-free.
func Scale(x []float64, k float64) float64 {
	t := 0.0
	for i := range x {
		x[i] *= k
		t += x[i]
	}
	return t
}

// Copied sums a defensive copy; the copy allocates per call.
func Copied(x []float64) float64 {
	y := make([]float64, len(x)) // want `hotalloc: make in //lint:hot path hotpath\.Scratch\.Deep`
	copy(y, x)
	return Scale(y, 1)
}
