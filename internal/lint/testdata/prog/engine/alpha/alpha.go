// Package alpha is the engine-test fixture: it exercises every call
// edge kind the call graph resolves (static, recursive, dynamic
// dispatch, method-value references, go/defer flags) plus the
// //lint:hot and //lint:ignore directive machinery.
package alpha

// Runner is the dispatch interface.
type Runner interface {
	Run(x int) int
}

// Impl is alpha's concrete Runner.
type Impl struct{ n int }

// Run implements Runner.
func (i *Impl) Run(x int) int { return x + i.n }

// Helper is a plain function.
func Helper(x int) int { return x * 2 }

// Direct calls Helper statically.
func Direct() int { return Helper(1) }

// Recurse calls itself.
func Recurse(n int) int {
	if n <= 0 {
		return 0
	}
	return Recurse(n - 1)
}

// Dispatch calls through the interface: the engine must fan out to
// every module method with a compatible name and shape.
func Dispatch(r Runner) int { return r.Run(3) }

// Bind references a method without calling it — a CallRef edge.
func Bind(i *Impl) func(int) int { return i.Run }

// Spawn marks edges with the go/defer flags.
func Spawn() {
	go Direct()
	defer Helper(2)
}

// Dead has a statically unreachable call after its return.
func Dead() {
	return
	Helper(9)
}

// Sorted carries an in-place suppression the engine must index.
func Sorted(m map[string]int) []string {
	var out []string
	//lint:ignore determinism callers sort before any ordered use
	for k := range m {
		out = append(out, k)
	}
	return out
}

//lint:hot
func Hot() int { return Helper(3) }
