// Package beta is the cross-package half of the engine fixture.
package beta

import "alpha"

// Other has the Runner shape, so interface dispatch in alpha must
// resolve to it too — packages type-check in separate universes, and
// the engine matches by name and shape.
type Other struct{}

// Run has the Runner shape.
func (Other) Run(x int) int { return x }

// Cross calls into alpha statically across the package boundary.
func Cross() int { return alpha.Helper(5) }
