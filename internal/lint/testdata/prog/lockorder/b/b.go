// Package b owns the other lock class of the lockorder fixture cycle.
package b

import "sync"

// Mu guards b's state.
var Mu sync.Mutex

// DoLocked runs one step under b's lock.
func DoLocked() {
	Mu.Lock()
	defer Mu.Unlock()
}
