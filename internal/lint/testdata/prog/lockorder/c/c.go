// Package c closes the lockorder fixture cycle: AB holds a's lock
// while (transitively) taking b's, BA does the inversion.  Two
// goroutines entering from different ends deadlock.
package c

import (
	"a"
	"b"
)

// AB holds a's lock while calling into b.
func AB() {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.DoLocked() // want `lockorder: lock-order cycle \(potential deadlock\)`
}

// BA holds b's lock while calling into a — the inversion.
func BA() {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	a.DoLocked()
}

// Straight acquires in the global order only; it adds edges but no
// cycle of its own.
func Straight() {
	a.Mu.Lock()
	b.DoLocked()
	a.Mu.Unlock()
}
