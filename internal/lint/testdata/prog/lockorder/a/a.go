// Package a owns one lock class of the lockorder fixture cycle.
package a

import "sync"

// Mu guards a's state.
var Mu sync.Mutex

// DoLocked runs one step under a's lock.
func DoLocked() {
	Mu.Lock()
	defer Mu.Unlock()
}
