// Package locks exercises the lockdiscipline analyzer.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex // a lock as a field is fine
	n  int
}

func byValueParam(mu sync.Mutex) {} // want `lockdiscipline: sync\.Mutex parameter by value`

func byPointerOK(mu *sync.Mutex) {}

func wgByValue(wg sync.WaitGroup) {} // want `lockdiscipline: sync\.WaitGroup parameter by value`

func wgByPointerOK(wg *sync.WaitGroup) {}

func byValueResult() sync.RWMutex { // want `lockdiscipline: sync\.RWMutex result by value`
	return sync.RWMutex{}
}

func (g *guarded) leakyEarlyReturn(cond bool) int {
	g.mu.Lock() // want `lockdiscipline: g\.mu held across a return`
	if cond {
		return 0 // leaks the lock
	}
	g.mu.Unlock()
	return g.n
}

func (g *guarded) deferOK(cond bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cond {
		return 0
	}
	return g.n
}

func (g *guarded) straightLineOK() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) unlockThenReturnOK(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) deferredClosureOK(cond bool) int {
	g.mu.Lock()
	defer func() {
		g.n++
		g.mu.Unlock()
	}()
	if cond {
		return 0
	}
	return g.n
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

func (g *rwGuarded) rlockLeaky(cond bool) int {
	g.mu.RLock() // want `lockdiscipline: g\.mu held across a return`
	if cond {
		return 0
	}
	g.mu.RUnlock()
	return g.n
}

func (g *rwGuarded) rlockDeferOK(cond bool) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if cond {
		return 0
	}
	return g.n
}

func (g *guarded) suppressedHandoff(cond bool) int {
	//lint:ignore lockdiscipline lock is handed off to the caller by contract
	g.mu.Lock()
	if cond {
		return 0
	}
	g.mu.Unlock()
	return g.n
}
