// Package nsga2 exercises the determinism analyzer: the package name is
// in the deterministic set, so wall clocks, the global rand source, and
// order-sensitive map iteration are all findings.
package nsga2

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want `determinism: time\.Now in deterministic package`
	_ = start
	return time.Since(start) // want `determinism: time\.Since in deterministic package`
}

func wallClockSuppressed() time.Time {
	//lint:ignore determinism timestamp is display-only metadata, never feeds numerics
	return time.Now()
}

func globalRand() float64 {
	return rand.Float64() // want `determinism: global math/rand\.Float64`
}

func seededRandOK(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are allowlisted
	return r.Float64()
}

func typeRefOK(r *rand.Rand) float64 { // the rand.Rand type is not the global source
	return r.Float64()
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `determinism: map iteration appends to "keys"`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapAppendSuppressed(m map[string]int) []string {
	var keys []string
	//lint:ignore determinism keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `determinism: map iteration accumulates into float "sum"`
		sum += v
	}
	return sum
}

func mapIntAccumOK(m map[string]int) int {
	// Integer addition is associative and commutative: order cannot
	// change the result, so this is not a finding.
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func mapOrderedOutput(m map[string]float64, w io.Writer) {
	for k, v := range m { // want `determinism: map iteration feeds ordered output`
		fmt.Fprintf(w, "%s %v\n", k, v)
	}
}

func subtestRegistration(t *testing.T, cases map[string]func(*testing.T)) {
	for name, fn := range cases { // want `determinism: map iteration registers subtests/benchmarks in random order`
		t.Run(name, fn)
	}
}

func sprintfInMapRangeOK(m map[string]int) map[string]string {
	// Sprintf only builds a string — it is not ordered output; the
	// result lands back in a map, so order cannot leak.
	out := make(map[string]string)
	for k, v := range m {
		out[k] = fmt.Sprintf("%s=%d", k, v)
	}
	return out
}

func sliceRangeOK(s []float64) float64 {
	// Slice iteration is ordered; accumulation is fine.
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum
}

func mapLocalAccumOK(m map[string][]float64) {
	// The accumulator is declared inside the loop body: per-key state,
	// no cross-iteration order dependence.
	for _, vs := range m {
		var sum float64
		for _, v := range vs {
			sum += v
		}
		_ = sum
	}
}
