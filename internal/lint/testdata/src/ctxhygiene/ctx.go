// Package cluster exercises the ctxhygiene analyzer.  The package name
// matters: the cancellation-blind-send rule applies only to cluster.
package cluster

import (
	"context"
	"testing"
)

type storedCtx struct {
	ctx context.Context // want `ctxhygiene: context\.Context stored in struct field "ctx"`
	n   int
}

type cleanStruct struct {
	n int
}

func ctxFirstOK(ctx context.Context, n int) {}

func ctxSecond(n int, ctx context.Context) {} // want `ctxhygiene: context\.Context is parameter 1`

func ctxAfterTestingOK(t *testing.T, ctx context.Context) {}

func ctxThird(a, b string, ctx context.Context) {} // want `ctxhygiene: context\.Context is parameter 2`

//lint:ignore ctxhygiene mirrors a third-party callback signature we cannot change
func ctxSecondSuppressed(n int, ctx context.Context) {}

func ctxSecondInLit() {
	f := func(n int, ctx context.Context) {} // want `ctxhygiene: context\.Context is parameter 1`
	_ = f
}

func blindSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `ctxhygiene: cancellation-blind channel send`
}

func selectSendOK(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func noCtxSendOK(ch chan int) {
	// No ctx in scope: nothing to select on, so a bare send is the
	// caller's problem, not this function's.
	ch <- 1
}

func suppressedSend(ctx context.Context, ch chan struct{}) {
	//lint:ignore ctxhygiene buffered handshake channel owned by this function; never blocks
	ch <- struct{}{}
}
