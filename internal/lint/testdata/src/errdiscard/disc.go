// Package npy exercises the errdiscard analyzer.  The package name
// matters: the rule applies to cluster, npy and dataset only.
package npy

import (
	"encoding/json"
	"io"
)

func writeFrame(w io.Writer) error {
	_, err := w.Write([]byte("frame"))
	return err
}

func process() error { return nil }

func bareClose(c io.Closer) {
	c.Close() // want `errdiscard: error from c\.Close dropped by bare call`
}

func blankClose(c io.Closer) {
	_ = c.Close() // want `errdiscard: error from c\.Close assigned to _`
}

func handledCloseOK(c io.Closer) error {
	return c.Close()
}

func deferredCloseOK(c io.Closer) {
	// Deferred best-effort cleanup is the idiom; not a finding.
	defer c.Close()
}

func deferredClosureOK(c io.Closer) {
	// The defer exemption covers the deferred subtree: an explicit
	// `_ =` inside a deferred cleanup closure is the same idiom as
	// `defer c.Close()` itself.
	defer func() {
		_ = c.Close()
	}()
}

func bareHelper(w io.Writer) {
	writeFrame(w) // want `errdiscard: error from writeFrame dropped by bare call`
}

func blankHelper(w io.Writer) {
	_ = writeFrame(w) // want `errdiscard: error from writeFrame assigned to _`
}

func nonIOBareOK() {
	// Error-returning, but not an io/net/encode path by name or package.
	process()
}

func blankWriteCount(w io.Writer) {
	n, _ := w.Write([]byte("x")) // want `errdiscard: error from w\.Write assigned to _`
	_ = n
}

func boundWriteOK(w io.Writer) error {
	n, err := w.Write([]byte("x"))
	_ = n
	return err
}

func bareEncode(w io.Writer, v interface{}) {
	json.NewEncoder(w).Encode(v) // want `errdiscard: error from json\.NewEncoder\(w\)\.Encode dropped by bare call`
}

func suppressedClose(c io.Closer) {
	//lint:ignore errdiscard best-effort close on an error path; the write error is already returned
	c.Close()
}
