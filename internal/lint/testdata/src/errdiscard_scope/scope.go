// Package mdutil is outside the errdiscard scope (cluster, npy,
// dataset), so dropped I/O errors here are not findings.
package mdutil

import "io"

func bareCloseOK(c io.Closer) {
	c.Close()
}

func blankCloseOK(c io.Closer) {
	_ = c.Close()
}
