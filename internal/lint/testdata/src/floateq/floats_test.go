// Test-file cases: exactness assertions and bit-identity asserts are
// the idiom here, so the allowlist is wider — but helper functions that
// compute with exact comparison are still findings.
package floats

import "testing"

func TestConstAssertOK(t *testing.T) {
	got := 0.0047
	if got != 0.0047 { // constant comparison in a test: exactness assertion
		t.Fatal("round-trip changed the value")
	}
}

func TestBitIdentityAssertOK(t *testing.T) {
	a := computeOnce()
	b := computeOnce()
	if a != b { // assert guard: mismatch fails the test
		t.Fatalf("not bit-identical: %v vs %v", a, b)
	}
}

func helperCompare(a, b float64) bool {
	return a == b // want `floateq: exact float comparison ==`
}

func TestHelperUse(t *testing.T) {
	if !helperCompare(computeOnce(), computeOnce()) {
		t.Skip("helper is itself the finding above")
	}
}

func computeOnce() float64 { return 1.0 / 3.0 }
