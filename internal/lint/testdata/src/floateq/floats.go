// Package floats exercises the floateq analyzer's findings and its
// allowlist in non-test code.
package floats

import "math"

const maxFitness = float64(1 << 63) // integral sentinel, like ea.MaxFitness
const tuned = 0.0047                // non-integral constant

func computedEq(a, b float64) bool {
	return a == b // want `floateq: exact float comparison ==`
}

func computedNeq(a, b float64) bool {
	return a != b // want `floateq: exact float comparison !=`
}

func suppressedEq(a, b float64) bool {
	//lint:ignore floateq duplicate-point detection requires exact identity
	return a == b
}

func zeroOK(a float64) bool {
	return a == 0 // integral constant: exact guard
}

func sentinelOK(a float64) bool {
	return a == maxFitness // integral constant: assigned, never computed
}

func nonIntegralConst(a float64) bool {
	return a == tuned // want `floateq: exact float comparison ==`
}

func bothConstOK() bool {
	return tuned == 0.0047 // compile-time comparison
}

func nanIdiomOK(a float64) bool {
	return a != a // the NaN check
}

func infSentinelOK(a float64) bool {
	return a == math.Inf(1)
}

func float32Too(a, b float32) bool {
	return a == b // want `floateq: exact float comparison ==`
}

func intOK(a, b int) bool {
	return a == b // integers compare exactly
}
