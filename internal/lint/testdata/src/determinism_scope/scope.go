// Package mdutil is NOT in the deterministic set: wall clocks and the
// global rand source are allowed here, so this package must produce no
// determinism diagnostics at all.
package mdutil

import (
	"math/rand"
	"time"
)

func wallClockOK() time.Time {
	return time.Now()
}

func globalRandOK() float64 {
	return rand.Float64()
}

func mapAppendOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
