package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// goroutinePkgs are the packages whose goroutines must have a reachable
// teardown: the distributed plane (cluster), the campaign service and
// the streaming prefetcher all promise clean drain/Close semantics, and
// a leaked goroutine there survives a campaign bounce holding buffers
// and connections.
var goroutinePkgs = map[string]bool{
	"cluster": true,
	"service": true,
	"stream":  true,
	// mux runs a flusher and a read loop per session; either leaking
	// past Close would pin the connection's buffers forever.
	"mux": true,
}

// GoroutineLeak flags goroutines whose blocking channel operations have
// no reachable closer, cancel or drain anywhere in the program: every
// spawn must be dominated by a teardown story (a close() site for the
// channels it receives on, buffering or a drain loop for the channels
// it sends on, or a ctx.Done()/done-channel case in its selects).
var GoroutineLeak = &Analyzer{
	Name:       "goroutineleak",
	Doc:        "goroutines in cluster/service/stream must not block forever: every channel op needs a reachable close/cancel/drain",
	RunProgram: runGoroutineLeak,
}

// chanFacts is the program-wide channel index: which channel "keys"
// have a close() site, a buffered make, or a draining range loop
// anywhere in the module.  Keys are built per expression by chanKeys.
type chanFacts struct {
	closed   map[string]bool
	buffered map[string]bool
	ranged   map[string]bool
}

// chanKeys returns the identity keys of a channel expression, strongest
// first: a struct-field key that survives package boundaries, an object
// key for locals/params, and a weak name key as a last resort (matching
// a close site by bare name under-reports rather than over-reports).
func chanKeys(pkg *Package, e ast.Expr) []string {
	var keys []string
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			f := sel.Obj()
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if n, ok := recv.(*types.Named); ok && n.Obj().Pkg() != nil {
				keys = append(keys, fmt.Sprintf("field:%s.%s.%s", n.Obj().Pkg().Path(), n.Obj().Name(), f.Name()))
			}
		}
		keys = append(keys, "name:"+v.Sel.Name)
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(v); obj != nil && obj.Pos().IsValid() {
			pos := pkg.Fset.Position(obj.Pos())
			keys = append(keys, fmt.Sprintf("obj:%s:%d:%d", pos.Filename, pos.Line, pos.Column))
		}
		keys = append(keys, "name:"+v.Name)
	}
	return keys
}

// chanIndex builds (once) the module-wide close/buffer/drain facts.
func (prog *Program) chanIndex() *chanFacts {
	if prog.chanOnce {
		return prog.chans
	}
	prog.chanOnce = true
	facts := &chanFacts{closed: map[string]bool{}, buffered: map[string]bool{}, ranged: map[string]bool{}}
	mark := func(m map[string]bool, pkg *Package, e ast.Expr) {
		for _, k := range chanKeys(pkg, e) {
			m[k] = true
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && len(node.Args) > 0 {
						if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
							mark(facts.closed, pkg, node.Args[0])
						}
					}
				case *ast.RangeStmt:
					if t := pkg.Info.TypeOf(node.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							mark(facts.ranged, pkg, node.X)
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range node.Rhs {
						if i < len(node.Lhs) && isBufferedMake(pkg, rhs) {
							mark(facts.buffered, pkg, node.Lhs[i])
						}
					}
				case *ast.ValueSpec:
					for i, rhs := range node.Values {
						if i < len(node.Names) && isBufferedMake(pkg, rhs) {
							mark(facts.buffered, pkg, node.Names[i])
						}
					}
				case *ast.KeyValueExpr:
					// Struct literals: Field: make(chan T, n).
					if id, ok := node.Key.(*ast.Ident); ok && isBufferedMake(pkg, node.Value) {
						if obj, ok := pkg.Info.Uses[id].(*types.Var); ok && obj.IsField() {
							facts.buffered["name:"+id.Name] = true
						}
					}
				}
				return true
			})
		}
	}
	prog.chans = facts
	return facts
}

// isBufferedMake reports make(chan T, n) with n not the constant 0.
func isBufferedMake(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if t := pkg.Info.TypeOf(call.Args[0]); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return false
		}
	}
	if v := constValue(pkg.Info, call.Args[1]); v != nil && v.Kind() == constant.Int {
		if n, ok := constant.Int64Val(v); ok && n == 0 {
			return false
		}
	}
	return true
}

// doneNameRe matches the naming convention for teardown channels.
var doneNameRe = regexp.MustCompile(`(?i)(done|quit|stop|close|exit|shutdown|ctx|cancel)`)

func runGoroutineLeak(pass *ProgPass) {
	prog := pass.Prog
	facts := prog.chanIndex()
	for _, n := range prog.Nodes() {
		if !goroutinePkgs[strings.TrimSuffix(n.Pkg.Name, "_test")] {
			continue
		}
		if inTestFileOf(n.Pkg, n.Decl.Pos()) {
			// Test and benchmark goroutines are bounded by wg.Wait and
			// process exit; the teardown contract is a production one.
			continue
		}
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			g, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if prog.unreachableIn(n, g.Pos()) {
				return true
			}
			body, bodyPkg := spawnedBody(prog, n, g)
			if body == nil {
				return true
			}
			ops := collectBlockingOps(prog, bodyPkg, body, facts, 0, map[string]bool{n.Key: true})
			for _, op := range ops {
				pos := op.pkg.Fset.Position(op.pos)
				pass.Reportf(n.Pkg, g.Pos(),
					"goroutine may block forever on %s at %s:%d with no reachable close/cancel/drain: teardown (drain/Close) must dominate every spawn; guard with ctx.Done()/close or //lint:ignore with the teardown story",
					op.kind, pos.Filename, pos.Line)
				break // one finding per spawn keeps the signal readable
			}
			return true
		})
	}
}

// spawnedBody resolves the function body a go statement executes: a
// literal's body, or the declaration of a statically resolved callee.
func spawnedBody(prog *Program, n *FuncNode, g *ast.GoStmt) (*ast.BlockStmt, *Package) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, n.Pkg
	}
	for _, e := range n.Out {
		if e.Site == g.Call && e.Go && e.Kind == CallStatic && e.Callee.Decl != nil {
			return e.Callee.Decl.Body, e.Callee.Pkg
		}
	}
	return nil, nil
}

// blockingOp is one potentially forever-blocking channel operation.
// pkg owns the position (ops collected from transitive callees live in
// other packages' filesets).
type blockingOp struct {
	kind string
	pos  token.Pos
	pkg  *Package
}

// collectBlockingOps walks a goroutine body (and its static callees, to
// a small depth) and returns unguarded blocking channel operations.
func collectBlockingOps(prog *Program, pkg *Package, body *ast.BlockStmt, facts *chanFacts, depth int, seen map[string]bool) []blockingOp {
	const maxDepth = 3
	var ops []blockingOp
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt:
			if !inSelectComm(stack, node) && !sendGuarded(pkg, node.Chan, facts) {
				ops = append(ops, blockingOp{kind: "a send to " + types.ExprString(node.Chan), pos: node.Pos(), pkg: pkg})
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !inSelectComm(stack, node) && !recvGuarded(pkg, node.X, facts) &&
				!semaphoreRelease(pkg, node.X, facts, stack) {
				ops = append(ops, blockingOp{kind: "a receive from " + types.ExprString(node.X), pos: node.Pos(), pkg: pkg})
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(node.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !recvGuarded(pkg, node.X, facts) {
					ops = append(ops, blockingOp{kind: "a range over " + types.ExprString(node.X), pos: node.Pos(), pkg: pkg})
				}
			}
		case *ast.SelectStmt:
			if !selectGuarded(pkg, node, facts) {
				ops = append(ops, blockingOp{kind: "a select with no default, done case or closable channel", pos: node.Pos(), pkg: pkg})
			}
			// Keep walking: the comm clauses themselves are exempted via
			// inSelectComm (the select was judged as a whole), but ops in
			// the case bodies still block individually.
		case *ast.CallExpr:
			if depth < maxDepth {
				for _, fn := range prog.staticCalleesAt(pkg, node) {
					if fn.Decl == nil || seen[fn.Key] {
						continue
					}
					seen[fn.Key] = true
					ops = append(ops, collectBlockingOps(prog, fn.Pkg, fn.Decl.Body, facts, depth+1, seen)...)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return ops
}

// staticCalleesAt resolves a call expression inside pkg to module
// functions (static and method edges only).
func (prog *Program) staticCalleesAt(pkg *Package, call *ast.CallExpr) []*FuncNode {
	var out []*FuncNode
	for _, rc := range prog.resolveCall(pkg, call) {
		if rc.kind == CallStatic {
			out = append(out, rc.node)
		}
	}
	return out
}

// inSelectComm reports whether the node is (part of) a select comm
// clause's communication — those block only until another case fires,
// and selectGuarded judges the select as a whole.
func inSelectComm(stack []ast.Node, n ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if cc, ok := stack[i].(*ast.CommClause); ok {
			return cc.Comm != nil && cc.Comm.Pos() <= n.Pos() && n.End() <= cc.Comm.End()
		}
		if _, ok := stack[i].(*ast.FuncLit); ok {
			return false
		}
	}
	return false
}

// sendGuarded: the send cannot block forever if the channel is known
// buffered at a make site or drained by a range loop somewhere.
func sendGuarded(pkg *Package, ch ast.Expr, facts *chanFacts) bool {
	for _, k := range chanKeys(pkg, ch) {
		if facts.buffered[k] || facts.ranged[k] {
			return true
		}
	}
	return doneChanExpr(pkg, ch)
}

// semaphoreRelease recognizes the acquire-before-spawn semaphore idiom:
// a deferred receive from a buffered channel is the release half of
// `sem <- struct{}{}; go func() { defer func() { <-sem }() … }` — the
// spawner deposited this goroutine's token before the spawn, so the
// receive always finds one and cannot block.
func semaphoreRelease(pkg *Package, ch ast.Expr, facts *chanFacts, stack []ast.Node) bool {
	buffered := false
	for _, k := range chanKeys(pkg, ch) {
		if facts.buffered[k] {
			buffered = true
			break
		}
	}
	if !buffered {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// recvGuarded: a receive terminates if the channel has a close() site,
// is a context/timer channel, or follows the done-channel convention.
func recvGuarded(pkg *Package, ch ast.Expr, facts *chanFacts) bool {
	for _, k := range chanKeys(pkg, ch) {
		if facts.closed[k] {
			return true
		}
	}
	return doneChanExpr(pkg, ch)
}

// doneChanExpr recognizes expressions that are teardown channels by
// construction: ctx.Done(), time.After/Tick, timer/ticker .C fields,
// and done/quit/stop-named channels.
func doneChanExpr(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" {
				return true
			}
			if path, name := pkgCall(pkg.Info, sel); path == "time" && (name == "After" || name == "Tick") {
				return true
			}
		}
	case *ast.SelectorExpr:
		if v.Sel.Name == "C" || doneNameRe.MatchString(v.Sel.Name) {
			return true
		}
	case *ast.Ident:
		return doneNameRe.MatchString(v.Name)
	}
	return false
}

// selectGuarded reports whether a blocking select (no default) has an
// escape hatch: a default case, a done-ish receive, a receive on a
// closable channel, or a send on a buffered/drained one.
func selectGuarded(pkg *Package, sel *ast.SelectStmt, facts *chanFacts) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			if sendGuarded(pkg, comm.Chan, facts) {
				return true
			}
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW && recvGuarded(pkg, u.X, facts) {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW && recvGuarded(pkg, u.X, facts) {
					return true
				}
			}
		}
	}
	return false
}
