package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc enforces the 0-allocs/op contract on functions annotated
//
//	//lint:hot
//
// (the nn/descriptor/deepmd/wire steady-state paths pinned by the
// TestSteadyStateAllocs family): the annotated function and everything
// it calls, transitively over static edges, must contain no per-call
// allocation sites.  Flagged shapes:
//
//   - make/new and slice/map composite literals, and &T{} literals,
//     unless amortized (guarded by a len/cap/nil check, behind a warm
//     early-return, or on a cold error/panic path);
//   - append that can grow a per-call slice (appending to reusable
//     storage — struct fields, caller-owned parameters, or locals
//     re-rooted from them with the buf[:0] idiom — is the project's
//     amortized-buffer pattern and is exempt);
//   - interface boxing: passing a non-pointer concrete value to an
//     interface-typed parameter, including variadic ...any calls;
//   - escaping closures and bound method values: function literals
//     that capture variables and leave the frame (returned, stored in
//     a field or global, or spawned) allocate per call.  A capturing
//     literal that stays local is left to the compiler's escape
//     analysis — the alloc tests pin the truth.
//
// Call edges taken only on guarded or cold paths (a cache-miss branch,
// an error path) do not pull their callees into the hot closure.
//
// A //lint:hot directive that does not attach to a function
// declaration is itself a finding — a misplaced annotation must not
// silently protect nothing.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "//lint:hot functions and their transitive callees must be allocation-free in steady state",
	RunProgram: runHotAlloc,
}

func runHotAlloc(pass *ProgPass) {
	prog := pass.Prog
	for _, o := range prog.hotOrphans {
		pass.Reportf(o.pkg, o.pos, "//lint:hot is not attached to a function declaration: the annotation protects nothing here; put it in the doc comment of the hot function")
	}

	roots := prog.HotRoots()
	if len(roots) == 0 {
		return
	}
	// closure: hot function key -> root keys that reach it.
	reached := map[string][]string{}
	for _, root := range roots {
		var walk func(n *FuncNode)
		seen := map[string]bool{}
		walk = func(n *FuncNode) {
			if seen[n.Key] {
				return
			}
			seen[n.Key] = true
			reached[n.Key] = append(reached[n.Key], shortKey(root.Key))
			for _, e := range n.Out {
				// Static calls only: dynamic dispatch on a hot path is
				// itself suspect but resolving it name-wide would drag
				// unrelated methods into the closure.
				if e.Kind != CallStatic || e.Go {
					continue
				}
				if coldCallSite(n, e) {
					continue // cache-miss / error-branch call: not steady state
				}
				walk(e.Callee)
			}
		}
		walk(root)
	}

	var keys []string
	for k := range reached {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := prog.Funcs[k]
		if n == nil || strings.HasSuffix(n.Pkg.Fset.Position(n.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		rootsNote := describeRoots(reached[k], shortKey(k))
		checkAllocSites(pass, prog, n, rootsNote)
	}
}

// coldCallSite reports whether a call edge is taken only off the steady
// path: the site sits under an amortizing guard or on a cold branch in
// its caller.
func coldCallSite(n *FuncNode, e CallEdge) bool {
	if e.Site == nil {
		return false
	}
	f := fileOf(n.Pkg, e.Site.Pos())
	if f == nil {
		return false
	}
	stack := pathEnclosing(f, e.Site.Pos())
	return amortizedOrCold(n.Pkg, stack)
}

// fileOf returns the package file whose positions cover pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// describeRoots renders the hot roots a function serves, deduplicated.
func describeRoots(roots []string, self string) string {
	seen := map[string]bool{}
	var uniq []string
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	sort.Strings(uniq)
	if len(uniq) == 1 && uniq[0] == self {
		return "//lint:hot " + self
	}
	if len(uniq) > 2 {
		uniq = append(uniq[:2], "…")
	}
	return "//lint:hot path " + strings.Join(uniq, ", ")
}

// checkAllocSites reports per-call allocation sites in one function of
// the hot closure.
func checkAllocSites(pass *ProgPass, prog *Program, n *FuncNode, rootsNote string) {
	pkg := n.Pkg
	reuse := reuseRootedLocals(pkg, n.Decl)
	var stack []ast.Node
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if prog.unreachableIn(n, node.Pos()) {
			stack = append(stack, node)
			return true
		}
		switch v := node.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						if !amortizedOrCold(pkg, stack) {
							pass.Reportf(pkg, v.Pos(), "%s in %s allocates every call: hoist the buffer into the reusable trace/scratch or guard it with a capacity check", b.Name(), rootsNote)
						}
					case "append":
						if appendMayGrow(pkg, n.Decl, v, reuse) && !amortizedOrCold(pkg, stack) {
							pass.Reportf(pkg, v.Pos(), "append in %s may grow a per-call slice: reuse a field/parameter buffer or append(buf[:0], …) over a pre-sized one", rootsNote)
						}
					}
					break
				}
			}
			checkBoxingCall(pass, pkg, v, stack, rootsNote)
		case *ast.CompositeLit:
			if allocatingLit(pkg, v, stack) && !amortizedOrCold(pkg, stack) {
				pass.Reportf(pkg, v.Pos(), "composite literal in %s escapes to the heap every call: hoist it into a reused buffer or the setup path", rootsNote)
			}
		case *ast.FuncLit:
			if capturesEnvironment(pkg, v) && escapesFrame(pkg, stack) && !amortizedOrCold(pkg, stack) {
				pass.Reportf(pkg, v.Pos(), "closure in %s captures variables and escapes, allocating per call: hoist the capture into a struct method or pass parameters explicitly", rootsNote)
			}
			stack = append(stack, node)
			return true
		case *ast.SelectorExpr:
			// Bound method value: x.M stored or returned allocates a
			// closure.  Passed as a plain call argument it usually stays
			// on the stack — the alloc tests arbitrate that case.
			if !isCallFun(stack, v) && methodObj(pkg.Info, v) != nil && escapesFrame(pkg, stack) && !amortizedOrCold(pkg, stack) {
				pass.Reportf(pkg, v.Pos(), "method value %s in %s escapes and allocates a bound closure per call: call it directly or hoist it", types.ExprString(v), rootsNote)
			}
		}
		stack = append(stack, node)
		return true
	})
}

// escapesFrame reports whether the closure/method value at the top of
// the walk leaves its creating frame: returned, assigned to a field or
// package-level variable, or handed to go/defer.  Local use is left to
// escape analysis.
func escapesFrame(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ReturnStmt:
			return true
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					return true // field (or qualified global) store
				case *ast.Ident:
					if obj := pkg.Info.ObjectOf(l); obj != nil {
						if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
							return true // package-level variable
						}
					}
				}
			}
			return false
		case *ast.CallExpr, *ast.CompositeLit, *ast.KeyValueExpr:
			continue // keep looking for the consuming statement
		default:
			return false
		}
	}
	return false
}

// allocatingLit reports composite literals that heap-allocate: slice
// and map literals always do; struct/array literals only when their
// address is taken (&T{…} escaping).
func allocatingLit(pkg *Package, lit *ast.CompositeLit, stack []ast.Node) bool {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.X == lit {
			return true // &T{…}
		}
	}
	return false
}

// reuseRootedLocals finds locals re-rooted from reusable storage: a
// local assigned from a struct field or parameter (typically with the
// buf[:0] reset idiom, `leases := d.leases[:0]`) carries the caller's
// amortized buffer, so appending to it grows once and then never again.
func reuseRootedLocals(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	reuse := map[types.Object]bool{}
	params := map[types.Object]bool{}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.ObjectOf(name); obj != nil {
					params[obj] = true
				}
			}
		}
	}
	rootedExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if s, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(s.X)
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return true
			}
		case *ast.Ident:
			obj := pkg.Info.ObjectOf(x)
			return obj != nil && (params[obj] || reuse[obj])
		}
		return false
	}
	// Two passes so chains (a := d.buf[:0]; b := a) resolve.
	for i := 0; i < 2; i++ {
		ast.Inspect(decl.Body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for j, rhs := range as.Rhs {
				if j >= len(as.Lhs) {
					break
				}
				id, ok := ast.Unparen(as.Lhs[j]).(*ast.Ident)
				if !ok {
					continue
				}
				if rootedExpr(rhs) {
					if obj := pkg.Info.ObjectOf(id); obj != nil {
						reuse[obj] = true
					}
				}
			}
			return true
		})
	}
	for o := range params {
		reuse[o] = true
	}
	return reuse
}

// appendMayGrow reports appends whose destination is per-call storage.
// Appending to reusable storage — a struct field, a caller-owned
// parameter, a local re-rooted from either, or the buf[:0] reset — is
// the amortized-buffer idiom: it grows while warming and then stays.
func appendMayGrow(pkg *Package, decl *ast.FuncDecl, call *ast.CallExpr, reuse map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst := ast.Unparen(call.Args[0])
	if s, ok := dst.(*ast.SliceExpr); ok {
		if s.Low == nil || isZeroConst(pkg, s.Low) {
			if s.High != nil && isZeroConst(pkg, s.High) {
				return false // append(buf[:0], …)
			}
		}
		dst = ast.Unparen(s.X)
	}
	switch v := dst.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return false // field-backed reusable buffer
		}
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(v); obj != nil && reuse[obj] {
			return false
		}
	}
	return true
}

func isZeroConst(pkg *Package, e ast.Expr) bool {
	v := constValue(pkg.Info, e)
	return v != nil && v.String() == "0"
}

// checkBoxingCall flags interface boxing at call sites: non-pointer
// concrete arguments passed to interface parameters, and non-empty
// interface-element variadic calls.
func checkBoxingCall(pass *ProgPass, pkg *Package, call *ast.CallExpr, stack []ast.Node, rootsNote string) {
	sigT := pkg.Info.TypeOf(call.Fun)
	sig, ok := sigT.(*types.Signature)
	if !ok {
		return // conversion or built-in
	}
	if amortizedOrCold(pkg, stack) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				paramT = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				paramT = last // s... passes the slice through, no boxing
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if paramT == nil {
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pkg.Info.TypeOf(arg)
		if argT == nil || !boxes(argT) {
			continue
		}
		if v := constValue(pkg.Info, arg); v != nil {
			continue // constants box to static data
		}
		pass.Reportf(pkg, arg.Pos(), "argument %s boxes into an interface in %s and allocates per call: keep the hot path monomorphic or pass a pointer", types.ExprString(arg), rootsNote)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: pointers, channels, maps, funcs and unsafe pointers fit
// the interface data word; everything else is copied to the heap.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Interface:
		return false // already an interface
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// amortizedOrCold reports whether a site sits on a path that does not
// run in steady state:
//
//   - inside an if/case whose condition mentions a len/cap/nil check
//     (the grow-on-demand idiom) or whose body terminates in a panic or
//     error return (failure paths), or
//   - after a warm early-return — an earlier if in the same block whose
//     amortizing condition returns, so only the cache-miss path falls
//     through to the site.
func amortizedOrCold(pkg *Package, stack []ast.Node) bool {
	var child ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if condIsAmortizing(pkg, s.Cond) || blockIsCold(s.Body) {
				return true
			}
		case *ast.CaseClause:
			if blockIsColdStmts(s.Body) {
				return true
			}
		case *ast.BlockStmt:
			if child != nil && warmEarlyReturnBefore(pkg, s, child) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// warmEarlyReturnBefore reports an amortizing early-return guard among
// the statements preceding child in block:
//
//	if s.sdesc != nil && … { return }   // warm path leaves here
//	s.sdesc = m.Desc.ShadowClone()      // ← only the miss reaches this
func warmEarlyReturnBefore(pkg *Package, block *ast.BlockStmt, child ast.Node) bool {
	for _, st := range block.List {
		if st == child || st.Pos() >= child.Pos() {
			break
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || !condIsAmortizing(pkg, ifs.Cond) {
			continue
		}
		if list := ifs.Body.List; len(list) > 0 {
			if _, isRet := list[len(list)-1].(*ast.ReturnStmt); isRet {
				return true
			}
		}
	}
	return false
}

// condIsAmortizing matches len/cap/nil-comparison conditions.
func condIsAmortizing(pkg *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if v.Name == "nil" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func blockIsCold(b *ast.BlockStmt) bool { return blockIsColdStmts(b.List) }

// blockIsColdStmts: the branch ends in panic or returns a non-nil
// error-ish value — a failure path that steady state never takes.
func blockIsColdStmts(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ExprStmt:
		return isTerminatingCall(last.X)
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			switch v := r.(type) {
			case *ast.Ident:
				if strings.Contains(strings.ToLower(v.Name), "err") {
					return true
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && (x.Name == "fmt" || x.Name == "errors") {
						return true
					}
				}
			}
		}
	}
	return false
}

// capturesEnvironment reports whether a function literal references
// objects declared outside itself (captured variables force a heap
// closure; a capture-free literal compiles to a static function).
func capturesEnvironment(pkg *Package, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos().IsValid() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}
