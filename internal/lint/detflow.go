package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow extends the package-local determinism analyzer across
// package boundaries: a wall-clock read or an order-sensitive map
// iteration whose *value* escapes through helper-function returns is
// flagged where a deterministic package consumes it.  The package-local
// analyzer catches `time.Now()` written inside nsga2; DetFlow catches
// `x := util.Stamp()` inside nsga2 where util.Stamp (any non-
// deterministic package) returns a time.Now-derived value through any
// number of intermediate helpers — the leak the golden campaign's
// byte-identity contract (frontier/lcurve/wire bytes) cannot tolerate.
//
// Sources suppressed in place with //lint:ignore determinism (or
// detflow) do not taint their callers: a collect-then-sort map range
// with a reasoned ignore stays clean interprocedurally too.
var DetFlow = &Analyzer{
	Name:       "detflow",
	Doc:        "no wall-clock or map-order values flowing through helpers into deterministic packages (frontier/lcurve/wire sinks)",
	RunProgram: runDetFlow,
}

// taintSummary records whether a function's return value is derived
// from a nondeterminism source, and where that source is.
type taintSummary struct {
	clock    bool
	mapOrder bool
	clockWhy string // "time.Now at file:line" or "via pkg.F: …"
	mapWhy   string
}

func runDetFlow(pass *ProgPass) {
	prog := pass.Prog

	// Fixed-point over the module: a function is return-tainted if any
	// return expression derives from a source or from a tainted callee's
	// result (tracked through simple local assignments).
	summaries := map[string]*taintSummary{}
	for _, n := range prog.Nodes() {
		summaries[n.Key] = &taintSummary{}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.Nodes() {
			s := summaries[n.Key]
			if s.clock && s.mapOrder {
				continue
			}
			clock, clockWhy, mapOrder, mapWhy := returnTaintOf(prog, n, summaries)
			if clock && !s.clock {
				s.clock, s.clockWhy = true, clockWhy
				changed = true
			}
			if mapOrder && !s.mapOrder {
				s.mapOrder, s.mapWhy = true, mapWhy
				changed = true
			}
		}
	}

	// Findings: deterministic-package code consuming a tainted return
	// from a non-deterministic package's function.
	for _, n := range prog.Nodes() {
		if !deterministicPkgs[strings.TrimSuffix(n.Pkg.Name, "_test")] {
			continue
		}
		var stack []ast.Node
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			if node == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				stack = append(stack, node)
				return true
			}
			if inTestFileOf(n.Pkg, call.Pos()) || resultDiscarded(stack) {
				stack = append(stack, node)
				return true
			}
			for _, rc := range prog.resolveCall(n.Pkg, call) {
				if rc.kind != CallStatic {
					continue
				}
				callee := rc.node
				if deterministicPkgs[strings.TrimSuffix(callee.Pkg.Name, "_test")] {
					continue // intra-deterministic calls are the local analyzer's job
				}
				sum := summaries[callee.Key]
				if sum == nil {
					continue
				}
				switch {
				case sum.clock:
					pass.Reportf(n.Pkg, call.Pos(),
						"call to %s returns a wall-clock-derived value (%s) into deterministic package %q: the result poisons bit-identical replay; inject the timestamp at the boundary",
						shortKey(callee.Key), sum.clockWhy, strings.TrimSuffix(n.Pkg.Name, "_test"))
				case sum.mapOrder:
					pass.Reportf(n.Pkg, call.Pos(),
						"call to %s returns a map-iteration-ordered value (%s) into deterministic package %q: map order is random per run; sort in the helper or iterate sorted keys",
						shortKey(callee.Key), sum.mapWhy, strings.TrimSuffix(n.Pkg.Name, "_test"))
				}
			}
			stack = append(stack, node)
			return true
		})
	}
}

// isSortCall matches the stdlib order-normalizers: sort.Slice and
// friends and the slices.Sort family.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, name := pkgCall(info, sel)
	switch path {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// resultDiscarded reports a call whose results cannot flow anywhere:
// a bare expression statement or a go/defer spawn.
func resultDiscarded(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch stack[len(stack)-1].(type) {
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt:
		return true
	}
	return false
}

func inTestFileOf(pkg *Package, pos token.Pos) bool {
	return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
}

// returnTaintOf analyzes one function body: local objects assigned from
// tainted expressions propagate (two forward passes handle simple
// chains), and any tainted return expression taints the summary.
func returnTaintOf(prog *Program, n *FuncNode, summaries map[string]*taintSummary) (clock bool, clockWhy string, mapOrder bool, mapWhy string) {
	pkg := n.Pkg
	taintedClock := map[types.Object]string{}
	taintedMap := map[types.Object]string{}

	// Map-order roots: variables appended to / accumulated inside a map
	// range (the package-local analyzer's definition), unless suppressed.
	markMapRoots := func() {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			rng, ok := node.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := pkg.Fset.Position(rng.Pos())
			if prog.suppressedAt(pos.Filename, pos.Line, "determinism") || prog.suppressedAt(pos.Filename, pos.Line, "detflow") {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, rhs := range as.Rhs {
					if i >= len(as.Lhs) {
						break
					}
					call, isCall := rhs.(*ast.CallExpr)
					isAppend := isCall && isBuiltinAppend(pkg.Info, call)
					if !isAppend && as.Tok != token.ADD_ASSIGN {
						continue
					}
					obj := rootIdentObj(pkg.Info, as.Lhs[i])
					if obj != nil && !declaredWithin(obj, rng) {
						taintedMap[obj] = fmt.Sprintf("map range at %s:%d", pos.Filename, pos.Line)
					}
				}
				return true
			})
			return true
		})
	}
	markMapRoots()

	// exprTaint classifies an expression's taint by walking its subtree.
	exprTaint := func(e ast.Expr) (c bool, cWhy string, m bool, mWhy string) {
		ast.Inspect(e, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.CallExpr:
				// A length or capacity is order-insensitive: len(m) of a
				// tainted collection does not carry the taint.
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						return false
					}
				}
				for _, rc := range prog.resolveCall(pkg, v) {
					if rc.kind != CallStatic {
						continue
					}
					if sum := summaries[rc.node.Key]; sum != nil {
						if sum.clock && !c {
							c, cWhy = true, "via "+shortKey(rc.node.Key)+": "+sum.clockWhy
						}
						if sum.mapOrder && !m {
							m, mWhy = true, "via "+shortKey(rc.node.Key)+": "+sum.mapWhy
						}
					}
				}
			case *ast.SelectorExpr:
				if path, name := pkgCall(pkg.Info, v); path == "time" && wallClockFuncs[name] {
					pos := pkg.Fset.Position(v.Pos())
					if !prog.suppressedAt(pos.Filename, pos.Line, "determinism") && !prog.suppressedAt(pos.Filename, pos.Line, "detflow") {
						c, cWhy = true, fmt.Sprintf("time.%s at %s:%d", name, pos.Filename, pos.Line)
					}
				}
			case *ast.Ident:
				if obj := pkg.Info.ObjectOf(v); obj != nil {
					if why, ok := taintedClock[obj]; ok && !c {
						c, cWhy = true, why
					}
					if why, ok := taintedMap[obj]; ok && !m {
						m, mWhy = true, why
					}
				}
			}
			return true
		})
		return c, cWhy, m, mWhy
	}

	// Two forward passes propagate taint through straight-line local
	// assignment chains (x := src(); y := x; return y).
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				c, cWhy, m, mWhy := exprTaint(rhs)
				obj := rootIdentObj(pkg.Info, as.Lhs[i])
				if obj == nil {
					continue
				}
				if c {
					taintedClock[obj] = cWhy
				}
				if m {
					taintedMap[obj] = mWhy
				}
			}
			return true
		})
	}

	// A collect-then-sort loop is deterministic: an object handed to a
	// sort call is order-normalized, so its map-order taint is cleared.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isSortCall(pkg.Info, call) {
			return true
		}
		if obj := rootIdentObj(pkg.Info, call.Args[0]); obj != nil {
			delete(taintedMap, obj)
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false // literals return to their own callers
		}
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			c, cWhy, m, mWhy := exprTaint(res)
			if c && !clock {
				clock, clockWhy = true, cWhy
			}
			if m && !mapOrder {
				mapOrder, mapWhy = true, mWhy
			}
		}
		return true
	})
	return clock, clockWhy, mapOrder, mapWhy
}
