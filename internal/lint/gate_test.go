package lint

import (
	"path/filepath"
	"testing"
)

// TestBaselineMatchesFreshRun runs the whole suite over the module and
// asserts the committed baseline (scripts/lint_baseline.txt) matches a
// fresh run exactly: no new findings (the tree stays clean) and no
// stale entries (the ratchet cannot silently grow — a fixed finding
// must be removed from the baseline in the same change).
//
// This test is what wires the lint gate into plain `go test ./...`:
// tier-1 fails on lint drift even before CI's dedicated lint job runs.
func TestBaselineMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		// Loading every package in the module costs a few seconds of
		// go list -export; the dedicated lint job covers short CI runs.
		t.Skip("short mode: skipping full-module lint load")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.ImportPath, e)
		}
	}
	// Program.Run executes the full suite — package-local and
	// interprocedural — so goroutineleak/lockorder/detflow/hotalloc
	// findings gate here too, not just in the dedicated lint job.
	diags := NewProgram(pkgs).Run(All())
	base, err := ReadBaseline(filepath.Join(root, "scripts", "lint_baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := Gate(diags, base)
	for _, d := range fresh {
		t.Errorf("new finding not in baseline: %s", d.String())
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (no longer reproduces): %s", s)
	}
	if t.Failed() {
		t.Log("fix findings or //lint:ignore with a reason; regenerate with: go run ./cmd/lint -update-baseline ./...")
	}
}

// TestAllStableOrder pins the analyzer roster and its order: baselines,
// -list output and per-analyzer timings all key off this sequence, so a
// reorder or a silently dropped analyzer must fail loudly.
func TestAllStableOrder(t *testing.T) {
	want := []string{
		"determinism",
		"floateq",
		"ctxhygiene",
		"lockdiscipline",
		"errdiscard",
		"goroutineleak",
		"lockorder",
		"detflow",
		"hotalloc",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}
