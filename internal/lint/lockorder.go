package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds a cross-package lock-acquisition graph over
// sync.Mutex / sync.RWMutex fields and package-level locks: an edge
// A → B means some call path acquires B while holding A.  A cycle in
// that graph is a potential deadlock — two goroutines entering the
// cycle from different ends block each other forever (the classic
// scheduler↔service callback inversion).  Lock identity is the lock
// *class* (declaring struct type + field name, or package + variable
// name), the standard static approximation; cycles of length ≥ 2 are
// reported, once per cycle, at the site of the contributing
// acquisition.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "no cycles in the cross-package lock-acquisition graph (potential deadlocks)",
	RunProgram: runLockOrder,
}

// lockEvent is one Lock/RLock/Unlock/RUnlock on a lock class inside a
// function body, in source order.
type lockEvent struct {
	key     string // lock class key
	display string // human form, e.g. "cluster.Scheduler.mu"
	pos     token.Pos
	acquire bool
	read    bool // RLock/RUnlock
	defers  bool // deferred release
}

// lockEdge is one "holds A, acquires B" observation.
type lockEdge struct {
	from, to   string
	fromD, toD string // display names
	pkg        *Package
	pos        token.Pos
	via        string // call chain note for interprocedural edges
}

// lockSummary is a function's transitive acquisition set.
type lockSummary struct {
	// acquires maps lock key -> display + representative path.
	acquires map[string]lockAcq
}

type lockAcq struct {
	display string
	via     string // "" for direct, else "via pkg.F"
}

func runLockOrder(pass *ProgPass) {
	prog := pass.Prog

	// Pass 1: per-function direct lock events and direct summaries.
	events := map[string][]lockEvent{}
	for _, n := range prog.Nodes() {
		events[n.Key] = lockEventsOf(n)
	}

	// Pass 2: transitive summaries (what each function may acquire),
	// fixed-point over the static call graph.
	summaries := map[string]*lockSummary{}
	for _, n := range prog.Nodes() {
		s := &lockSummary{acquires: map[string]lockAcq{}}
		for _, ev := range events[n.Key] {
			if ev.acquire {
				s.acquires[ev.key] = lockAcq{display: ev.display}
			}
		}
		summaries[n.Key] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.Nodes() {
			s := summaries[n.Key]
			for _, e := range n.Out {
				if e.Kind != CallStatic || e.Go {
					continue // goroutines acquire on their own stack
				}
				callee := summaries[e.Callee.Key]
				for k, acq := range callee.acquires {
					if _, ok := s.acquires[k]; !ok {
						via := "via " + shortKey(e.Callee.Key)
						if acq.via != "" {
							via = acq.via // keep the deepest origin note short
						}
						s.acquires[k] = lockAcq{display: acq.display, via: via}
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: edges.  Holding H at position p (between Lock and its
	// release), a direct acquisition or a call that transitively
	// acquires adds H → acquired edges.
	var edges []lockEdge
	for _, n := range prog.Nodes() {
		evs := events[n.Key]
		held := func(p token.Pos) []lockEvent {
			var hs []lockEvent
			for i, ev := range evs {
				if !ev.acquire || ev.pos >= p {
					continue
				}
				if releasedBefore(evs, i, p) {
					continue
				}
				hs = append(hs, ev)
			}
			return hs
		}
		// Direct acquire-under-hold edges.
		for _, ev := range evs {
			if !ev.acquire {
				continue
			}
			for _, h := range held(ev.pos) {
				if h.key == ev.key {
					continue // same class, likely distinct instances
				}
				edges = append(edges, lockEdge{
					from: h.key, to: ev.key, fromD: h.display, toD: ev.display,
					pkg: n.Pkg, pos: ev.pos,
				})
			}
		}
		// Call-site propagation.
		for _, e := range n.Out {
			if e.Kind != CallStatic || e.Go {
				continue
			}
			hs := held(e.Site.Pos())
			if len(hs) == 0 {
				continue
			}
			callee := summaries[e.Callee.Key]
			for _, k := range sortedKeys(callee.acquires) {
				acq := callee.acquires[k]
				for _, h := range hs {
					if h.key == k {
						continue
					}
					via := "via " + shortKey(e.Callee.Key)
					if acq.via != "" {
						via = via + " " + acq.via
					}
					edges = append(edges, lockEdge{
						from: h.key, to: k, fromD: h.display, toD: acq.display,
						pkg: n.Pkg, pos: e.Site.Pos(), via: via,
					})
				}
			}
		}
	}

	reportLockCycles(pass, edges)
}

// lockEventsOf extracts the source-ordered lock events of a function
// body, skipping nested function literals (separate lock scopes) and
// recording deferred releases.
func lockEventsOf(n *FuncNode) []lockEvent {
	var evs []lockEvent
	record := func(node ast.Node, deferred bool) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		key, display, ok := lockClassOf(n.Pkg, sel.X)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock":
			evs = append(evs, lockEvent{key: key, display: display, pos: call.Pos(), acquire: !deferred})
		case "RLock":
			evs = append(evs, lockEvent{key: key, display: display, pos: call.Pos(), acquire: !deferred, read: true})
		case "Unlock", "RUnlock":
			evs = append(evs, lockEvent{key: key, display: display, pos: call.Pos(), defers: deferred, read: sel.Sel.Name == "RUnlock"})
		}
	}
	walkSameFunc(n.Decl.Body, func(node ast.Node) {
		switch s := node.(type) {
		case *ast.DeferStmt:
			record(s.Call, true)
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					record(m, true)
					return true
				})
			}
		case *ast.ExprStmt:
			record(s.X, false)
		}
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// releasedBefore reports whether the acquisition evs[i] has a matching
// explicit release strictly between its position and p.  A deferred
// release keeps the lock held until function exit, so it never releases
// "before p".
func releasedBefore(evs []lockEvent, i int, p token.Pos) bool {
	acq := evs[i]
	for _, ev := range evs[i+1:] {
		if ev.pos >= p {
			return false
		}
		if ev.acquire || ev.defers || ev.key != acq.key {
			continue
		}
		if ev.read == acq.read {
			return true
		}
	}
	return false
}

// lockClassOf identifies the lock class of a mutex expression: a struct
// field ("pkg.Type.field") or a package-level variable ("pkg.var").
// Local mutexes have no cross-function identity and are skipped.
func lockClassOf(pkg *Package, e ast.Expr) (key, display string, ok bool) {
	t := pkg.Info.TypeOf(e)
	if t == nil || (!isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex")) {
		return "", "", false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, selOK := pkg.Info.Selections[v]; selOK && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, isPtr := recv.(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				path := named.Obj().Pkg().Path()
				key = fmt.Sprintf("%s.%s.%s", path, named.Obj().Name(), v.Sel.Name)
				return key, shortKey(key), true
			}
		}
		// Package-qualified var: pkg.mu.
		if id, isIdent := v.X.(*ast.Ident); isIdent {
			if pn, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				key = pn.Imported().Path() + "." + v.Sel.Name
				return key, shortKey(key), true
			}
		}
	case *ast.Ident:
		if obj, isVar := pkg.Info.ObjectOf(v).(*types.Var); isVar && !obj.IsField() && obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			key = obj.Pkg().Path() + "." + obj.Name()
			return key, shortKey(key), true
		}
		// Receiver-embedded mutex (s.mu via embedded field is a selector;
		// a bare `mu` here is a local — no stable class).
	}
	return "", "", false
}

// shortKey trims the module prefix from a lock/function key for
// messages: "repro/internal/cluster.Scheduler.mu" → "cluster.Scheduler.mu".
func shortKey(key string) string {
	const prefix = "repro/internal/"
	if len(key) > len(prefix) && key[:len(prefix)] == prefix {
		return key[len(prefix):]
	}
	return key
}

// reportLockCycles finds strongly connected components of size ≥ 2 in
// the edge graph and reports one finding per cycle, deterministically.
func reportLockCycles(pass *ProgPass, edges []lockEdge) {
	adj := map[string]map[string]lockEdge{}
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]lockEdge{}
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e
		}
	}
	sccs := tarjanSCC(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, k := range scc {
			inSCC[k] = true
		}
		// Walk one concrete cycle starting from the smallest node, always
		// taking the smallest in-SCC successor — deterministic output.
		var path []string
		var cyc []lockEdge
		cur := scc[0]
		for {
			path = append(path, cur)
			next := ""
			for _, to := range sortedKeys(adj[cur]) {
				if inSCC[to] {
					next = to
					break
				}
			}
			if next == "" {
				break
			}
			cyc = append(cyc, adj[cur][next])
			if next == scc[0] {
				break
			}
			cur = next
			if len(path) > len(scc) {
				break // safety against malformed graphs
			}
		}
		if len(cyc) == 0 {
			continue
		}
		var b []byte
		for i, e := range cyc {
			if i > 0 {
				b = append(b, ", "...)
			}
			pos := e.pkg.Fset.Position(e.pos)
			b = append(b, fmt.Sprintf("%s → %s at %s:%d", e.fromD, e.toD, pos.Filename, pos.Line)...)
			if e.via != "" {
				b = append(b, (" (" + e.via + ")")...)
			}
		}
		first := cyc[0]
		pass.Reportf(first.pkg, first.pos,
			"lock-order cycle (potential deadlock): %s; acquire these locks in one global order or decouple the callback", string(b))
	}
}

// tarjanSCC computes strongly connected components over the string
// graph, visiting nodes in sorted order for deterministic output.
func tarjanSCC(adj map[string]map[string]lockEdge) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	nodes := map[string]bool{}
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(adj[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range sortedKeys(nodes) {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
