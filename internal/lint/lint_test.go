package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg materializes a throwaway single-file package and loads it.
func writePkg(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestMalformedIgnoreDirective: a reasonless //lint:ignore suppresses
// nothing and is itself reported, so a suppression can never silently
// fail to document itself.
func TestMalformedIgnoreDirective(t *testing.T) {
	pkg := writePkg(t, `package nsga2

import "time"

func f() time.Time {
	//lint:ignore determinism
	return time.Now()
}
`)
	diags := Run(pkg, []*Analyzer{Determinism})
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "lint-directive") {
		t.Errorf("malformed directive not reported; got rules %q", joined)
	}
	if !strings.Contains(joined, "determinism") {
		t.Errorf("reasonless directive must not suppress; got rules %q", joined)
	}
}

// TestUnknownRuleIgnoreDirective: a //lint:ignore naming a rule that
// matches no registered analyzer is reported under lint-directive and
// suppresses nothing — a typo'd rule name can never look like a valid
// suppression while protecting nothing.
func TestUnknownRuleIgnoreDirective(t *testing.T) {
	pkg := writePkg(t, `package nsga2

import "time"

func f() time.Time {
	//lint:ignore determinsm typo'd rule name must not suppress
	return time.Now()
}

func g() time.Time {
	//lint:ignore determinism,bogusrule the valid half still suppresses
	return time.Now()
}
`)
	diags := Run(pkg, []*Analyzer{Determinism})
	var badMsgs, rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
		if d.Rule == "lint-directive" {
			badMsgs = append(badMsgs, d.Msg)
		}
	}
	joined := strings.Join(rules, ",")
	if got := strings.Count(joined, "lint-directive"); got != 2 {
		t.Errorf("want 2 lint-directive findings (one per unknown rule), got %d:\n%s", got, FormatDiags(diags))
	}
	for _, m := range badMsgs {
		if !strings.Contains(m, "unknown rule") {
			t.Errorf("lint-directive finding does not name the unknown rule: %q", m)
		}
	}
	// f's finding survives (its directive was all-typo); g's is suppressed
	// by the valid half of its comma list.
	if !strings.Contains(joined, "determinism") {
		t.Errorf("typo'd directive must not suppress f's finding; got rules %q", joined)
	}
	if got := strings.Count(joined, "determinism"); got != 1 {
		t.Errorf("want exactly 1 surviving determinism finding (g suppressed), got %d:\n%s", got, FormatDiags(diags))
	}
}

// TestIgnoreSameLineAndLineAbove pins the two accepted placements.
func TestIgnoreSameLineAndLineAbove(t *testing.T) {
	pkg := writePkg(t, `package nsga2

import "time"

func f() time.Time {
	return time.Now() //lint:ignore determinism same-line suppression
}

func g() time.Time {
	//lint:ignore determinism line-above suppression
	return time.Now()
}

func h() time.Time {
	//lint:ignore floateq wrong rule does not suppress determinism
	return time.Now()
}
`)
	diags := Run(pkg, []*Analyzer{Determinism})
	if len(diags) != 1 {
		t.Fatalf("want exactly the wrong-rule finding to survive, got:\n%s", FormatDiags(diags))
	}
	if line := diags[0].Pos.Line; line != 16 {
		t.Errorf("surviving finding at line %d, want 16 (inside h)", line)
	}
}

func TestBaselineRoundTripAndGate(t *testing.T) {
	diags := []Diagnostic{
		{Pos: pos("a.go", 3), Rule: "floateq", Msg: "exact float comparison"},
		{Pos: pos("b.go", 9), Rule: "errdiscard", Msg: "error dropped"},
	}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := WriteBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("baseline has %d entries, want 2", len(base))
	}

	// Same findings: nothing new, nothing stale.
	fresh, stale := Gate(diags, base)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("identical run: fresh=%v stale=%v", fresh, stale)
	}

	// One fixed, one new: the fixed entry is stale, the new one fresh.
	next := []Diagnostic{
		diags[0],
		{Pos: pos("c.go", 1), Rule: "determinism", Msg: "time.Now"},
	}
	fresh, stale = Gate(next, base)
	if len(fresh) != 1 || fresh[0].Pos.Filename != "c.go" {
		t.Errorf("fresh = %v, want the c.go finding", fresh)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "b.go") {
		t.Errorf("stale = %v, want the b.go entry", stale)
	}
}

func TestReadBaselineMissingFileIsEmpty(t *testing.T) {
	base, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 0 {
		t.Errorf("missing baseline should be empty, got %v", base)
	}
}

func pos(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	p.Column = 1
	return p
}
