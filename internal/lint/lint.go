package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	diags *[]Diagnostic
	rule  string
}

// Reportf records a diagnostic at pos under the running analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  position,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical file:line:col: rule: message form used
// in terminal output, baselines and golden tests.  The file path is
// printed as recorded in the fileset (the loader records paths relative
// to the module root).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Key is the position-insensitive-column baseline key: file:line plus
// rule and message.  Columns are excluded so minor reformatting within
// a line does not churn the baseline.
func (d Diagnostic) Key() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Analyzer is one named rule.  Package-local analyzers set Run;
// interprocedural analyzers set RunProgram and execute once over the
// whole program (they need the call graph, so Program.Run is the only
// driver that runs them).  An analyzer may set both.
type Analyzer struct {
	// Name is the rule ID used in diagnostics and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunProgram inspects the whole program (all module packages, call
	// graph, CFGs) and reports findings via pass.Reportf.
	RunProgram func(pass *ProgPass)
}

// All returns every analyzer in the suite, in stable order: the five
// package-local analyzers of the original suite, then the four
// interprocedural analyzers built on the call-graph engine.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		FloatEq,
		CtxHygiene,
		LockDiscipline,
		ErrDiscard,
		GoroutineLeak,
		LockOrder,
		DetFlow,
		HotAlloc,
	}
}

// registeredRules is the valid //lint:ignore rule namespace: every
// analyzer name plus the directive pseudo-rule itself.
func registeredRules() map[string]bool {
	rules := map[string]bool{"lint-directive": true}
	for _, a := range All() {
		rules[a.Name] = true
	}
	return rules
}

// Run executes the package-local analyzers over one loaded package and
// returns the surviving diagnostics (suppressions applied), sorted by
// position.  Interprocedural analyzers (RunProgram only) are skipped —
// they need a Program; use Program.Run for the full suite.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			diags:      &diags,
			rule:       a.Name,
		}
		a.Run(pass)
	}
	diags = applyIgnores(pkg, diags)
	sortDiags(diags)
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int // line the directive occupies
	rules  map[string]bool
	reason string
}

const ignorePrefix = "lint:ignore"

// parseIgnores scans a package's comments for //lint:ignore directives.
// Malformed directives (no rule, or no reason) and directives naming a
// rule that matches no registered analyzer are themselves reported as
// findings under the pseudo-rule "lint-directive", so a suppression can
// never silently fail to document itself — and a typo'd rule name can
// never silently suppress nothing while looking like it does.
func parseIgnores(pkg *Package) (dirs []ignoreDirective, bad []Diagnostic) {
	known := registeredRules()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "lint-directive",
						Msg:  "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rules := map[string]bool{}
				for _, r := range strings.Split(fields[0], ",") {
					if !known[r] {
						// The unknown rule is reported and excluded from the
						// directive's rule set: it suppresses nothing.
						bad = append(bad, Diagnostic{
							Pos:  pos,
							Rule: "lint-directive",
							Msg:  fmt.Sprintf("//lint:ignore names unknown rule %q: no such analyzer is registered, so this suppresses nothing (did you mean one of go run ./cmd/lint -list?)", r),
						})
						continue
					}
					rules[r] = true
				}
				if len(rules) == 0 {
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:   pos.Filename,
					line:   pos.Line,
					rules:  rules,
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// applyIgnores removes diagnostics covered by a //lint:ignore on the
// same line or the line immediately above, and appends any malformed-
// directive findings.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	dirs, bad := parseIgnores(pkg)
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.file != d.Pos.Filename || !dir.rules[d.Rule] {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return append(out, bad...)
}

// pathEnclosing returns the AST node stack from file root down to the
// innermost node covering pos (a lightweight astutil.PathEnclosingInterval).
func pathEnclosing(file *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			stack = append(stack, n)
			return true
		}
		return false
	})
	return stack
}
