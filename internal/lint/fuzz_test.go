package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzSuppressionDirective fuzzes the //lint:ignore parser: for any
// comment text, a parsed directive must name only registered rules and
// carry a non-empty reason, every rejection must surface under the
// lint-directive pseudo-rule, and the parser must never panic.  The
// seed corpus covers the accepted grammar, both malformed shapes
// (missing rule, missing reason), unknown and half-unknown comma lists,
// and near-miss prefixes; regressions found by fuzzing are committed
// under testdata/fuzz/FuzzSuppressionDirective.
func FuzzSuppressionDirective(f *testing.F) {
	for _, seed := range []string{
		"lint:ignore determinism seeded map is order-independent",
		"lint:ignore detflow,hotalloc shared scratch buffer",
		"lint:ignore bogusrule reasoned but unregistered",
		"lint:ignore determinism,bogusrule half-valid comma list",
		"lint:ignore determinism",
		"lint:ignore",
		"lint:ignore  determinism   extra   spacing  ",
		"lint:ignore , empty rule token",
		"lint:ignored not actually the directive",
		"lint:hot",
		"not a directive at all",
		"lint:ignore determinism\ttab separated reason",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, directive string) {
		// The parser's unit is a comment in a parsed file; newlines would
		// end the comment early and test the parser's framing instead of
		// the directive grammar, so flatten them.
		directive = strings.NewReplacer("\n", " ", "\r", " ").Replace(directive)
		src := "package p\n\n//" + directive + "\nvar X = 1\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip("input breaks Go comment lexing, not the directive grammar")
		}
		pkg := &Package{Fset: fset, Files: []*ast.File{file}}
		dirs, bad := parseIgnores(pkg)

		known := registeredRules()
		for _, d := range dirs {
			if len(d.rules) == 0 {
				t.Fatalf("directive with empty rule set accepted: %+v", d)
			}
			for r := range d.rules {
				if !known[r] {
					t.Fatalf("unregistered rule %q survived parsing: %+v", r, d)
				}
			}
			if strings.TrimSpace(d.reason) == "" {
				t.Fatalf("directive with blank reason accepted: %+v", d)
			}
			if d.file != "fuzz.go" || d.line != 3 {
				t.Fatalf("directive at %s:%d, want fuzz.go:3: %+v", d.file, d.line, d)
			}
		}
		for _, b := range bad {
			if b.Rule != "lint-directive" {
				t.Fatalf("rejection reported under rule %q, want lint-directive: %s", b.Rule, b.String())
			}
			if b.Msg == "" {
				t.Fatal("rejection with empty message")
			}
		}
	})
}
