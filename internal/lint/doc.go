// Package lint is a project-native static-analysis suite built on the
// standard library's go/ast and go/types only (no x/tools dependency).
// It enforces invariants that go vet cannot see but that the campaign
// semantics depend on: bit-identical determinism in the numeric
// packages, no exact float comparisons outside a small allowlist,
// context hygiene in the distributed plane, lock discipline, no
// silently dropped I/O errors on the persistence paths — and, through
// a whole-program layer, goroutine teardown, cross-package lock
// ordering, interprocedural determinism taint and the 0-allocs/op
// hot-path contract.
//
// # Two layers
//
// Package-local analyzers (Analyzer.Run) inspect one type-checked
// package at a time; Run drives them.  Interprocedural analyzers
// (Analyzer.RunProgram) need the whole module at once: Program indexes
// every function by a stable cross-package key ("pkgpath.Name" or
// "pkgpath.Recv.Name" — packages type-check in separate export-data
// universes, so *types.Func identity does not survive package
// boundaries, but string keys do), resolves every call site to static,
// interface-dispatch and method-value edges with go/defer flags, and
// builds lightweight per-function control-flow graphs (BuildCFG) for
// reachability questions.  Program.Run drives both layers; All returns
// the full ordered roster.
//
// # Loading
//
// Load shells out to `go list -deps -test -export` once and
// type-checks every module package against compiler export data, with
// positions recorded relative to the module root.  The go list run is
// memoized under <module>/.lintcache, keyed by a content hash of the
// toolchain version, go.mod/go.sum and every tracked .go file, and
// validated against the build cache before reuse.  LoadDir loads one
// testdata package for the golden harness; LoadDirProgram loads a
// multi-package fixture tree (each subdirectory one package,
// importable by its directory name) sharing one fileset and importer,
// which is how the interprocedural golden programs under
// testdata/prog are exercised.
//
// # Directives
//
// Diagnostics carry a rule ID (the analyzer name).  A finding can be
// suppressed in place with
//
//	//lint:ignore <rule> <reason>
//
// on the same line or the line immediately above; the reason is
// mandatory, and a directive naming a rule that matches no registered
// analyzer is itself a finding under the pseudo-rule "lint-directive",
// so a typo'd suppression can never silently protect nothing.
// Interprocedural analyzers honor suppressions at the source: a
// suppressed nondeterminism site does not taint its callers.
//
// Hot paths opt into the allocation contract with
//
//	//lint:hot
//
// in (or directly above) a function's doc comment: the function and
// everything it calls transitively must be allocation-free in steady
// state (see HotAlloc).  A //lint:hot that attaches to no function
// declaration is reported.
//
// Remaining findings are gated against a committed baseline
// (scripts/lint_baseline.txt) that may only shrink.
package lint
