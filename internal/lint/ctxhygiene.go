package lint

import (
	"go/ast"
)

// CtxHygiene enforces context discipline:
//
//   - context.Context must not be stored in struct fields — a stored
//     context outlives the call tree it belongs to and silently detaches
//     cancellation (the scheduler bounce bugs of PR 2 were this shape);
//   - context.Context must be the first parameter (after any *testing.T
//     / *testing.B / *testing.F), per the standard convention the rest
//     of the tree relies on when threading cancellation;
//   - in package cluster, a channel send in a function that has a ctx
//     must sit inside a select — a bare send blocks forever if the peer
//     is gone, which is exactly when cancellation must still win.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "no stored contexts, ctx-first signatures, no cancellation-blind sends in cluster",
	Run:  runCtxHygiene,
}

func runCtxHygiene(pass *Pass) {
	pkg := basePkgName(pass)
	checkSends := pkg == "cluster" || pkg == "service"
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch node := n.(type) {
		case *ast.StructType:
			for _, field := range node.Fields.List {
				if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
					name := "embedded"
					if len(field.Names) > 0 {
						name = field.Names[0].Name
					}
					pass.Reportf(field.Pos(), "context.Context stored in struct field %q: a stored ctx detaches cancellation from the call tree; pass it as a parameter", name)
				}
			}
		case *ast.FuncDecl:
			checkCtxPosition(pass, node.Type)
		case *ast.FuncLit:
			checkCtxPosition(pass, node.Type)
		case *ast.SendStmt:
			if checkSends && !inTestFile(pass, node) {
				checkSend(pass, node, stack)
			}
		}
	})
}

// checkCtxPosition flags a context.Context parameter that is not first
// (testing.T/B/F params may precede it).
func checkCtxPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) {
			if pos > 0 {
				pass.Reportf(field.Pos(), "context.Context is parameter %d: ctx goes first (after *testing.T/B/F) so call sites thread cancellation uniformly", pos)
			}
			return // only the first ctx param matters
		}
		if t == nil || !isTestingParam(t) {
			pos += n
		}
	}
}

func isTestingParam(t interface{ String() string }) bool {
	switch t.String() {
	case "*testing.T", "*testing.B", "*testing.F":
		return true
	}
	return false
}

// checkSend flags `ch <- v` outside a select in any cluster function
// that has a context.Context parameter available to select on.
func checkSend(pass *Pass, send *ast.SendStmt, stack []ast.Node) {
	ft, fn := enclosingFuncType(stack)
	if ft == nil || !funcHasCtxParam(pass, ft) {
		return
	}
	// Inside a select's comm clause the send is already cancellation-
	// aware (or deliberately prioritized); only bare sends are blind.
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == fn {
			break
		}
		if _, ok := stack[i].(*ast.SelectStmt); ok {
			return
		}
	}
	pass.Reportf(send.Pos(), "cancellation-blind channel send in a function with a ctx: a bare send blocks forever if the receiver is gone; select on ctx.Done() too")
}

func funcHasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}
