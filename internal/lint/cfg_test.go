package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG wraps body in a result-free function, parses it and
// builds its CFG.  Result-free so trailing unreachable statements do
// not trip the type checker's missing-return analysis (the CFG layer
// is purely syntactic and needs no types).
func buildTestCFG(t *testing.T, body string) (*CFG, *token.FileSet) {
	t.Helper()
	src := "package p\n\nfunc F() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body), fset
}

// unreachableLines returns the source lines of statements the CFG
// proves unreachable, deduplicated in order.
func unreachableLines(cfg *CFG, fset *token.FileSet) []int {
	var lines []int
	seen := map[int]bool{}
	for _, s := range cfg.Unreachable() {
		l := fset.Position(s.Pos()).Line
		if !seen[l] {
			seen[l] = true
			lines = append(lines, l)
		}
	}
	return lines
}

func wantLines(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("unreachable lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unreachable lines = %v, want %v", got, want)
		}
	}
}

func TestCFGStraightLine(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	x := 1
	x++
	_ = x
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGDeadAfterReturn(t *testing.T) {
	// Body lines start at 4 (src has 3 header lines).
	cfg, fset := buildTestCFG(t, `
	x := 1
	_ = x
	return
	x = 2
	x = 3
`)
	wantLines(t, unreachableLines(cfg, fset), []int{8, 9})
}

func TestCFGDeadAfterPanic(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	panic("boom")
	x := 1
	_ = x
`)
	wantLines(t, unreachableLines(cfg, fset), []int{6, 7})
}

func TestCFGDeadAfterOsExit(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	os.Exit(1)
	println("after")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{6})
}

func TestCFGIfBothBranchesReturn(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	x := 1
	if x > 0 {
		return
	} else {
		return
	}
	x = 2
`)
	wantLines(t, unreachableLines(cfg, fset), []int{11})
}

func TestCFGIfOneBranchReturns(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	x := 1
	if x > 0 {
		return
	}
	x = 2
	_ = x
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGLoopTailAfterBreak(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	for {
		break
		println("dead")
	}
	println("after loop")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{7})
}

func TestCFGCondLoopExits(t *testing.T) {
	// A conditional for loop can fall through; the tail is reachable.
	cfg, fset := buildTestCFG(t, `
	for i := 0; i < 3; i++ {
		println(i)
	}
	println("after")
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGInfiniteLoopTail(t *testing.T) {
	// for {} with no break never reaches the statement after it.
	cfg, fset := buildTestCFG(t, `
	for {
		println("spin")
	}
	println("dead")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{8})
}

func TestCFGContinueTail(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	for i := 0; i < 3; i++ {
		continue
		println("dead")
	}
`)
	wantLines(t, unreachableLines(cfg, fset), []int{7})
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
outer:
	for {
		for {
			break outer
			println("dead inner")
		}
	}
	println("after outer")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{9})
}

func TestCFGGotoForward(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	goto done
	println("dead")
done:
	println("after label")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{6})
}

func TestCFGSwitchAllCasesReturnWithDefault(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		return
	default:
		return
	}
	println("dead")
`)
	wantLines(t, unreachableLines(cfg, fset), []int{12})
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		return
	}
	println("reachable")
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGSwitchFallthroughLinksCases(t *testing.T) {
	// Case 2's body is reachable only through case 1's fallthrough when
	// the head can also branch there directly — both paths must exist.
	cfg, fset := buildTestCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	}
	_ = x
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGSelectCaseBodies(t *testing.T) {
	cfg, fset := buildTestCFG(t, `
	a := make(chan int)
	select {
	case <-a:
		println("recv")
	case a <- 1:
		println("send")
	}
	println("after select")
`)
	wantLines(t, unreachableLines(cfg, fset), nil)
}

func TestCFGReachableBlocksConnected(t *testing.T) {
	// Every reachable block must be in Blocks, and entry is reachable.
	cfg, _ := buildTestCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	}
	for i := 0; i < x; i++ {
		println(i)
	}
`)
	reach := cfg.Reachable()
	if !reach[cfg.Entry] {
		t.Fatal("entry block not reachable")
	}
	inBlocks := map[*Block]bool{}
	for _, b := range cfg.Blocks {
		inBlocks[b] = true
	}
	for b := range reach {
		if !inBlocks[b] {
			t.Errorf("reachable block %d missing from Blocks", b.Index)
		}
	}
}
