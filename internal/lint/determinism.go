package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose outputs must be bit-identical
// across runs, thread counts and schedulers — the property the golden
// campaign (internal/refcheck/testdata/golden) pins down.  A stray wall
// clock, global rand draw or map-order-dependent accumulation in any of
// them breaks byte-for-byte reproducibility without failing a test.
var deterministicPkgs = map[string]bool{
	"nsga2":      true,
	"ea":         true,
	"deepmd":     true,
	"descriptor": true,
	"neighbor":   true,
	"nn":         true,
	"blas":       true,
	"refcheck":   true,
	"stream":     true,
	// service owes clients restart-invariant campaigns: the same spec
	// must produce byte-identical frontiers across process bounces, so a
	// stray clock or map-order leak in it breaks the resume contract.
	"service": true,
	// wire frames must encode byte-identically for the same message — the
	// cross-transport golden tests compare campaign artifacts bit for
	// bit, so the codec gets the same no-clock/no-rand discipline.
	"wire": true,
}

// Determinism flags nondeterminism sources in deterministic packages:
// wall-clock reads (time.Now/Since/Until), the global math/rand source,
// and map iteration feeding ordered output or float accumulation.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global rand, or order-sensitive map iteration in deterministic packages",
	Run:  runDeterminism,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared, per-process-seeded global source.  Type references
// (rand.Rand, rand.Source) and constructors (rand.New, rand.NewSource)
// are fine — they are how seeded generators get built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

func runDeterminism(pass *Pass) {
	if !deterministicPkgs[basePkgName(pass)] {
		return
	}
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch node := n.(type) {
		case *ast.SelectorExpr:
			path, name := pkgCall(pass.Info, node)
			switch {
			case path == "time" && wallClockFuncs[name]:
				pass.Reportf(node.Pos(), "time.%s in deterministic package %q: wall-clock reads break bit-identical replay; inject the timestamp at the boundary", name, basePkgName(pass))
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
				pass.Reportf(node.Pos(), "global math/rand.%s in deterministic package %q: the shared source is seeded per-process; use a seeded *rand.Rand", name, basePkgName(pass))
			}
		case *ast.RangeStmt:
			checkMapRange(pass, node)
		}
	})
}

// checkMapRange flags `for … := range m` over a map when the loop body
// is order-sensitive: it appends to a slice declared outside the loop,
// accumulates into an outer floating-point variable (float addition is
// not associative, so sum order changes the bits), or writes ordered
// output.  Collect-then-sort loops should sort immediately after and
// carry a //lint:ignore explaining that.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			switch node.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range node.Lhs {
					lt := pass.Info.TypeOf(lhs)
					obj := rootIdentObj(pass.Info, lhs)
					if lt != nil && isFloat(lt) && obj != nil && !declaredWithin(obj, rng) {
						pass.Reportf(rng.Pos(), "map iteration accumulates into float %q: float addition is order-sensitive and map order is random; iterate sorted keys", obj.Name())
						return false
					}
				}
			case token.ASSIGN, token.DEFINE:
				// x = append(x, …) with x declared outside the loop.
				for i, rhs := range node.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(node.Lhs) {
						continue
					}
					obj := rootIdentObj(pass.Info, node.Lhs[i])
					if obj != nil && !declaredWithin(obj, rng) {
						pass.Reportf(rng.Pos(), "map iteration appends to %q in random order; collect-then-sort (and //lint:ignore with that reason) or iterate sorted keys", obj.Name())
						return false
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(pass.Info, node); ok {
				pass.Reportf(rng.Pos(), "map iteration feeds ordered output via %s; map order is random — iterate sorted keys", name)
				return false
			}
			if isSubtestRun(pass.Info, node) {
				pass.Reportf(rng.Pos(), "map iteration registers subtests/benchmarks in random order; -run output and bench tables reorder between runs — iterate a sorted slice")
				return false
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedOutputCall reports calls that emit ordered bytes: fmt printers
// that write (Sprintf and friends only build strings and are judged by
// where their result flows) and Write/Encode-family methods.
func orderedOutputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if path, name := pkgCall(info, sel); path == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Print", "Printf", "Println", "Fprintf", "Fprintln":
		return sel.Sel.Name, true
	}
	return "", false
}

// isSubtestRun reports t.Run/b.Run/f.Run calls on testing receivers:
// registration order is part of the observable test/bench output.
func isSubtestRun(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	recv := info.TypeOf(sel.X)
	return recv != nil && isTestingParam(recv)
}
