package lint

import (
	"go/ast"
	"go/token"
)

// CFG is a lightweight intraprocedural control-flow graph: basic blocks
// of statements connected by successor edges.  It is deliberately
// small — enough to answer reachability questions (dead code after
// return/panic, unreachable branches) for the interprocedural
// analyzers, without the full SSA machinery this module cannot depend
// on.
type CFG struct {
	Entry  *Block
	Blocks []*Block
}

// Block is one basic block: statements that execute in sequence, with
// control transfers only at the end.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// cfgBuilder threads the current block through the statement walk.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loops stacks the enclosing (continue, break) targets.
	loops []loopFrame
	// labels maps label names to their blocks (created on demand for
	// forward gotos) and their loop frames for labeled break/continue.
	labels     map[string]*Block
	labelLoops map[string]loopFrame
}

type loopFrame struct {
	label         string
	cont, brk     *Block
	isSwitchOrSel bool // break target only; continue passes through
}

// BuildCFG builds the graph for one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		labels:     map[string]*Block{},
		labelLoops: map[string]loopFrame{},
	}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.stmtList(body.List)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump links from→to unless from already terminated (nil).
func jump(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// emit appends s to the current block; a dead current block (after
// return/panic) still collects statements so Unreachable can report
// them, via a fresh successor-less block.
func (b *cfgBuilder) emit(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable block: no predecessors
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		b.emit(st)
		cond := b.cur
		then := b.newBlock()
		jump(cond, then)
		b.cur = then
		b.stmtList(st.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if st.Else != nil {
			els := b.newBlock()
			jump(cond, els)
			b.cur = els
			b.stmt(st.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		if st.Else == nil {
			jump(cond, join)
		}
		jump(thenEnd, join)
		jump(elseEnd, join)
		b.cur = join

	case *ast.ForStmt:
		b.forLoop(st, "", st.Body)

	case *ast.RangeStmt:
		b.emit(st)
		head := b.cur
		body := b.newBlock()
		done := b.newBlock()
		jump(head, body)
		jump(head, done)
		b.pushLoop(loopFrame{cont: head, brk: done})
		b.cur = body
		b.stmtList(st.Body.List)
		jump(b.cur, head)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.emit(s)
		b.switchLike(s)

	case *ast.SelectStmt:
		b.emit(st)
		head := b.cur
		done := b.newBlock()
		b.pushLoop(loopFrame{brk: done, isSwitchOrSel: true})
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			jump(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			b.stmtList(cc.Body)
			jump(b.cur, done)
		}
		b.popLoop()
		b.cur = done

	case *ast.ReturnStmt:
		b.emit(st)
		b.cur = nil

	case *ast.BranchStmt:
		b.emit(st)
		switch st.Tok {
		case token.BREAK:
			jump(b.cur, b.breakTarget(labelName(st.Label)))
			b.cur = nil
		case token.CONTINUE:
			jump(b.cur, b.continueTarget(labelName(st.Label)))
			b.cur = nil
		case token.GOTO:
			jump(b.cur, b.labelBlock(labelName(st.Label)))
			b.cur = nil
		case token.FALLTHROUGH:
			// switchLike links case bodies in order; nothing to do here.
		}

	case *ast.LabeledStmt:
		lbl := b.labelBlock(st.Label.Name)
		jump(b.cur, lbl)
		b.cur = lbl
		if fs, ok := st.Stmt.(*ast.ForStmt); ok {
			b.forLoop(fs, st.Label.Name, fs.Body)
			return
		}
		if rs, ok := st.Stmt.(*ast.RangeStmt); ok {
			b.labeledRange(rs, st.Label.Name)
			return
		}
		b.stmt(st.Stmt)

	case *ast.ExprStmt:
		b.emit(st)
		if isTerminatingCall(st.X) {
			b.cur = nil
		}

	default:
		// Plain statements (assign, decl, send, go, defer, inc/dec,
		// empty) fall through sequentially.
		b.emit(s)
	}
}

// forLoop builds a for statement, optionally labeled.
func (b *cfgBuilder) forLoop(st *ast.ForStmt, label string, body *ast.BlockStmt) {
	if st.Init != nil {
		b.emit(st.Init)
	}
	head := b.newBlock()
	jump(b.cur, head)
	head.Stmts = append(head.Stmts, st) // the for itself anchors the head
	bodyBlk := b.newBlock()
	done := b.newBlock()
	jump(head, bodyBlk)
	if st.Cond != nil {
		jump(head, done) // condition may fail before the first iteration
	}
	post := head
	if st.Post != nil {
		post = b.newBlock()
		post.Stmts = append(post.Stmts, st.Post)
		jump(post, head)
	}
	frame := loopFrame{label: label, cont: post, brk: done}
	b.pushLoop(frame)
	if label != "" {
		b.labelLoops[label] = frame
	}
	b.cur = bodyBlk
	b.stmtList(body.List)
	jump(b.cur, post)
	b.popLoop()
	b.cur = done
}

// labeledRange mirrors the RangeStmt case with a label frame.
func (b *cfgBuilder) labeledRange(st *ast.RangeStmt, label string) {
	b.emit(st)
	head := b.cur
	body := b.newBlock()
	done := b.newBlock()
	jump(head, body)
	jump(head, done)
	frame := loopFrame{label: label, cont: head, brk: done}
	b.pushLoop(frame)
	b.labelLoops[label] = frame
	b.cur = body
	b.stmtList(st.Body.List)
	jump(b.cur, head)
	b.popLoop()
	b.cur = done
}

// switchLike builds switch/type-switch: each case branches from the
// head; fallthrough links a case body to the next case's body.
func (b *cfgBuilder) switchLike(s ast.Stmt) {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.emit(st.Init)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.emit(st.Init)
		}
		body = st.Body
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	done := b.newBlock()
	b.pushLoop(loopFrame{brk: done, isSwitchOrSel: true})
	hasDefault := false
	var caseBlocks []*Block
	var caseEnds []*Block
	var caseClauses []*ast.CaseClause
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		jump(head, blk)
		b.cur = blk
		if cc.List == nil {
			hasDefault = true
		}
		b.stmtList(cc.Body)
		caseBlocks = append(caseBlocks, blk)
		caseEnds = append(caseEnds, b.cur)
		caseClauses = append(caseClauses, cc)
		jump(b.cur, done)
	}
	// fallthrough: terminal `fallthrough` in case i jumps into case i+1.
	for i, cc := range caseClauses {
		if i+1 >= len(caseBlocks) || len(cc.Body) == 0 {
			continue
		}
		if br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			jump(caseEnds[i], caseBlocks[i+1])
		}
	}
	if !hasDefault {
		jump(head, done) // no case may match
	}
	b.popLoop()
	b.cur = done
}

func (b *cfgBuilder) pushLoop(f loopFrame) { b.loops = append(b.loops, f) }
func (b *cfgBuilder) popLoop()             { b.loops = b.loops[:len(b.loops)-1] }

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

func (b *cfgBuilder) breakTarget(label string) *Block {
	if label != "" {
		if f, ok := b.labelLoops[label]; ok {
			return f.brk
		}
		return b.labelBlock(label) // unknown label: degrade to its block
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		return b.loops[i].brk
	}
	return nil
}

func (b *cfgBuilder) continueTarget(label string) *Block {
	if label != "" {
		if f, ok := b.labelLoops[label]; ok {
			return f.cont
		}
		return b.labelBlock(label)
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if !b.loops[i].isSwitchOrSel {
			return b.loops[i].cont
		}
	}
	return nil
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if name == "" {
		return nil
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// isTerminatingCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and the testing Fatal family cannot be
// distinguished without types here, so only the unambiguous builtins
// and selector forms are matched syntactically.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln" || fun.Sel.Name == "Panic" || fun.Sel.Name == "Panicf" || fun.Sel.Name == "Panicln"):
				return true
			}
		}
	}
	return false
}

// Reachable returns the blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// Unreachable returns the statements of blocks that cannot be reached
// from the entry, in source order.  Loop-head statements recorded on a
// reachable block are never included.
func (c *CFG) Unreachable() []ast.Stmt {
	seen := c.Reachable()
	var dead []ast.Stmt
	for _, b := range c.Blocks {
		if seen[b] {
			continue
		}
		dead = append(dead, b.Stmts...)
	}
	sortStmts(dead)
	return dead
}

func sortStmts(list []ast.Stmt) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j].Pos() < list[j-1].Pos(); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
}
