package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// inspectWithStack walks every file, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// basePkgName returns the package name with any _test suffix stripped,
// so external test packages inherit the rules of the package they test.
func basePkgName(p *Pass) string {
	return strings.TrimSuffix(p.Pkg.Name(), "_test")
}

// pkgCall reports the (import path, selector name) of a package-qualified
// reference like time.Now, or ("", "") if sel is not one.
func pkgCall(info *types.Info, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// isNamedType reports whether t (after pointer unwrapping) is the named
// type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// constValue returns e's compile-time constant value, or nil.
func constValue(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside n's span.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// rootIdentObj resolves the root identifier object of an lvalue like
// x, x.f, or x[i].f — the variable whose storage the expression reaches.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// enclosingFuncType returns the type of the innermost enclosing function
// declaration or literal in stack, with the node itself, or nil.
func enclosingFuncType(stack []ast.Node) (*ast.FuncType, ast.Node) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Type, f
		case *ast.FuncLit:
			return f.Type, f
		}
	}
	return nil, nil
}

// inTestFile reports whether the node's file (by position) is a _test.go.
func inTestFile(p *Pass, n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}
