package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands.  Exact float
// comparison is almost always a rounding bug waiting to happen; the
// narrow legitimate uses are allowlisted:
//
//   - comparison against an integral-valued constant (0, 1, the MAXINT
//     failure sentinel 2⁶³): these values are assigned, never computed,
//     so the comparison is an exact round-trip;
//   - both operands constant (compile-time identity);
//   - x != x / x == x — the NaN idiom;
//   - comparison against math.Inf(...)/math.NaN() sentinels;
//   - in _test.go files, comparison against any constant (decode and
//     round-trip tests assert exact stored values by design);
//   - in _test.go files, a comparison whose enclosing if-statement body
//     fails the test (t.Error/t.Fatal/…): exact asserts are the
//     bit-identity idiom the golden campaign is built on.  Comparisons
//     in test helpers that compute rather than assert are still flagged.
//
// Everything else — comparing two computed floats — needs either an
// epsilon or a //lint:ignore documenting why exactness is the semantics
// (dominance identity, Spearman tie detection, sort tie-breaks).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact ==/!= between computed floating-point values",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return
		}
		xt, yt := pass.Info.TypeOf(bin.X), pass.Info.TypeOf(bin.Y)
		if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
			return
		}
		xv, yv := constValue(pass.Info, bin.X), constValue(pass.Info, bin.Y)
		switch {
		case xv != nil && yv != nil:
			return // compile-time comparison
		case isIntegralConst(xv) || isIntegralConst(yv):
			return // exact sentinel (0, 1, MAXINT, …)
		case inTestFile(pass, bin) && (xv != nil || yv != nil):
			return // exactness assertions in tests
		case inTestFile(pass, bin) && isTestAssertGuard(pass, bin, stack):
			return // bit-identity assert: mismatch fails the test
		case types.ExprString(bin.X) == types.ExprString(bin.Y):
			return // x != x NaN idiom
		case isInfNaNCall(pass.Info, bin.X) || isInfNaNCall(pass.Info, bin.Y):
			return
		}
		pass.Reportf(bin.Pos(), "exact float comparison %s between computed values; use an epsilon or //lint:ignore with the reason exact equality is the semantics", bin.Op)
	})
}

// isTestAssertGuard reports whether bin sits in the condition of an if
// statement whose body (or else branch) fails or skips the test — the
// `if got != want { t.Fatalf(…) }` bit-identity idiom.
func isTestAssertGuard(pass *Pass, bin *ast.BinaryExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok || ifStmt.Cond == nil {
			continue
		}
		if bin.Pos() < ifStmt.Cond.Pos() || bin.End() > ifStmt.Cond.End() {
			continue
		}
		failed := false
		check := func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := pass.Info.TypeOf(sel.X)
			if recv == nil || !isTestingParam(recv) {
				return true
			}
			switch sel.Sel.Name {
			case "Error", "Errorf", "Fatal", "Fatalf", "Fail", "FailNow", "Skip", "Skipf":
				failed = true
			}
			return true
		}
		ast.Inspect(ifStmt.Body, check)
		if ifStmt.Else != nil {
			ast.Inspect(ifStmt.Else, check)
		}
		if failed {
			return true
		}
	}
	return false
}

// isIntegralConst reports whether v is a numeric constant with an exact
// integral value (0, 1, 2⁶³, …) — values that are assigned verbatim and
// therefore compare exactly.
func isIntegralConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int:
		return true
	case constant.Float:
		return constant.ToInt(v).Kind() == constant.Int
	}
	return false
}

// isInfNaNCall reports whether e is math.Inf(…) or math.NaN().
func isInfNaNCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, name := pkgCall(info, sel)
	return path == "math" && (name == "Inf" || name == "NaN")
}
