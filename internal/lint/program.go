package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Program is the whole-module view the interprocedural analyzers run
// over: every module package loaded and type-checked once, a function
// index keyed by stable cross-package keys, and the call graph built on
// top of it.  Packages are memoized — the expensive `go list -export`
// and type-check happen once per driver run, and every analyzer shares
// the result.
type Program struct {
	Pkgs []*Package

	// Funcs indexes every function and method declared in the module by
	// FuncKey.  Each package is type-checked in its own universe (its
	// imports come from export data), so *types.Func identity does not
	// survive package boundaries; string keys do.
	Funcs map[string]*FuncNode

	// nodes holds the same functions in deterministic (key-sorted) order.
	nodes []*FuncNode

	// methodIndex maps a method name to every concrete (non-interface
	// receiver) method in the module, for interface-dispatch resolution.
	methodIndex map[string][]*FuncNode

	// hotOrphans records //lint:hot directives that are not attached to
	// a function declaration; hotalloc reports them so a misplaced
	// annotation cannot silently protect nothing.
	hotOrphans []orphanDirective

	ignores  map[string][]ignoreDirective // file -> parsed //lint:ignore directives
	ignBad   []Diagnostic                 // malformed/unknown-rule directive findings
	timings  []Timing
	chanOnce bool
	chans    *chanFacts
}

type orphanDirective struct {
	pkg *Package
	pos token.Pos
}

// Timing is one analyzer's wall-clock cost in the last Program.Run.
type Timing struct {
	Name     string
	Duration time.Duration
}

// Timings returns per-analyzer wall times from the last Run, in run
// order, with the pseudo-entries "load" (set by LoadProgram) first.
func (prog *Program) Timings() []Timing { return prog.timings }

// FuncNode is one function or method declared in the module.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Hot marks functions annotated //lint:hot: the 0-allocs/op contract
	// applies to them and everything they call.
	Hot bool
	// Out lists resolved outgoing call edges, in source order.
	Out []CallEdge

	cfg *CFG
}

// CallKind classifies how a call edge was resolved.
type CallKind int

const (
	// CallStatic is a direct call of a declared function or method.
	CallStatic CallKind = iota
	// CallDynamic is an interface-method call, resolved to every
	// concrete method in the module with a compatible name and shape.
	CallDynamic
	// CallRef is a function or method value referenced without being
	// called (stored, passed, or returned); it may be called later.
	CallRef
)

// CallEdge is one resolved outgoing call from a FuncNode.
type CallEdge struct {
	Kind   CallKind
	Site   ast.Node // the *ast.CallExpr, or the reference expression for CallRef
	Callee *FuncNode
	// Go and Deferred mark call sites inside go / defer statements.
	Go       bool
	Deferred bool
}

// NewProgram indexes the packages and builds the call graph.  The
// packages must all belong to one load (module run or testdata mini
// program); cross-package references resolve through FuncKey.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:        pkgs,
		Funcs:       map[string]*FuncNode{},
		methodIndex: map[string][]*FuncNode{},
		ignores:     map[string][]ignoreDirective{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{Key: funcKeyOf(pkg, fd, obj), Pkg: pkg, Decl: fd, Obj: obj}
				prog.Funcs[node.Key] = node
				if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
					if _, isIface := recv.Type().Underlying().(*types.Interface); !isIface {
						prog.methodIndex[obj.Name()] = append(prog.methodIndex[obj.Name()], node)
					}
				}
			}
		}
	}
	for _, n := range prog.Funcs {
		prog.nodes = append(prog.nodes, n)
	}
	sort.Slice(prog.nodes, func(i, j int) bool { return prog.nodes[i].Key < prog.nodes[j].Key })
	for _, name := range sortedKeys(prog.methodIndex) {
		ms := prog.methodIndex[name]
		sort.Slice(ms, func(i, j int) bool { return ms[i].Key < ms[j].Key })
	}
	for _, n := range prog.nodes {
		prog.buildEdges(n)
	}
	prog.markHot()
	prog.parseAllIgnores()
	return prog
}

// Nodes returns every function in the program in deterministic order.
func (prog *Program) Nodes() []*FuncNode { return prog.nodes }

// FuncKey returns the stable cross-package key of a function object:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for
// methods.  Generic instantiations key to their origin.
func FuncKey(obj *types.Func) string {
	obj = obj.Origin()
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			pkgPath := ""
			if n.Obj().Pkg() != nil {
				pkgPath = n.Obj().Pkg().Path()
			}
			return pkgPath + "." + n.Obj().Name() + "." + obj.Name()
		}
		return t.String() + "." + obj.Name()
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcKeyOf keys a declaration; init functions (which collide by name
// and are never called) are disambiguated by position.
func funcKeyOf(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	key := FuncKey(obj)
	if fd.Recv == nil && fd.Name.Name == "init" {
		pos := pkg.Fset.Position(fd.Pos())
		return fmt.Sprintf("%s@%s:%d", key, pos.Filename, pos.Line)
	}
	return key
}

// buildEdges resolves every call and function-value reference in n's
// body to call-graph edges.
func (prog *Program) buildEdges(n *FuncNode) {
	var stack []ast.Node
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		switch e := node.(type) {
		case *ast.CallExpr:
			inGo, inDefer := spawnContext(stack, e)
			for _, callee := range prog.resolveCall(n.Pkg, e) {
				prog.addEdge(n, CallEdge{Kind: callee.kind, Site: e, Callee: callee.node, Go: inGo, Deferred: inDefer})
			}
		case *ast.SelectorExpr:
			// Method values: s.Method referenced outside call position
			// allocates a bound-method closure and may be called later.
			if !isCallFun(stack, e) {
				if obj := methodObj(n.Pkg.Info, e); obj != nil {
					if callee := prog.Funcs[FuncKey(obj)]; callee != nil {
						prog.addEdge(n, CallEdge{Kind: CallRef, Site: e, Callee: callee})
					}
				}
			}
		case *ast.Ident:
			// Plain function values passed around.
			if !isCallFun(stack, e) && !isDeclName(stack, e) {
				if obj, ok := n.Pkg.Info.Uses[e].(*types.Func); ok && obj.Type().(*types.Signature).Recv() == nil {
					if callee := prog.Funcs[FuncKey(obj)]; callee != nil {
						prog.addEdge(n, CallEdge{Kind: CallRef, Site: e, Callee: callee})
					}
				}
			}
		}
		stack = append(stack, node)
		return true
	})
}

func (prog *Program) addEdge(n *FuncNode, e CallEdge) { n.Out = append(n.Out, e) }

type resolvedCallee struct {
	node *FuncNode
	kind CallKind
}

// resolveCall maps a call expression to its possible module callees.
func (prog *Program) resolveCall(pkg *Package, call *ast.CallExpr) []resolvedCallee {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[f].(*types.Func); ok {
			if n := prog.Funcs[FuncKey(obj)]; n != nil {
				return []resolvedCallee{{n, CallStatic}}
			}
		}
	case *ast.SelectorExpr:
		obj := methodObj(pkg.Info, f)
		if obj == nil {
			// Package-qualified function: pkg.Fn.
			if o, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
				if n := prog.Funcs[FuncKey(o)]; n != nil {
					return []resolvedCallee{{n, CallStatic}}
				}
			}
			return nil
		}
		sig := obj.Type().(*types.Signature)
		if sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return prog.resolveDynamic(obj)
			}
		}
		if n := prog.Funcs[FuncKey(obj)]; n != nil {
			return []resolvedCallee{{n, CallStatic}}
		}
	}
	return nil
}

// resolveDynamic returns interface-dispatch edges: every concrete
// module method with the called name and a compatible shape.  Shape
// matching is by parameter/result count — packages type-check in
// separate universes, so nominal types.Implements checks would miss
// cross-package implementations.
func (prog *Program) resolveDynamic(iface *types.Func) []resolvedCallee {
	isig := iface.Type().(*types.Signature)
	var out []resolvedCallee
	for _, cand := range prog.methodIndex[iface.Name()] {
		csig := cand.Obj.Type().(*types.Signature)
		if csig.Params().Len() == isig.Params().Len() && csig.Results().Len() == isig.Results().Len() {
			out = append(out, resolvedCallee{cand, CallDynamic})
		}
	}
	return out
}

// methodObj returns the *types.Func of a method selection, or nil if
// sel is not a method reference.
func methodObj(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if f, ok := s.Obj().(*types.Func); ok {
			return f
		}
	}
	return nil
}

// spawnContext reports whether call is the immediate call of a go or
// defer statement in stack.
func spawnContext(stack []ast.Node, call *ast.CallExpr) (inGo, inDefer bool) {
	if len(stack) == 0 {
		return false, false
	}
	switch s := stack[len(stack)-1].(type) {
	case *ast.GoStmt:
		return s.Call == call, false
	case *ast.DeferStmt:
		return false, s.Call == call
	}
	return false, false
}

// isCallFun reports whether e is the function operand of its parent
// call expression (stack holds ancestors, innermost last).
func isCallFun(stack []ast.Node, e ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(p.Fun) == e
		case *ast.SelectorExpr:
			// e is the Sel of a selector; judge the selector itself.
			if p.Sel == e {
				e = p
				continue
			}
			return false
		default:
			return false
		}
	}
	return false
}

// isDeclName reports whether id is the name being declared by its
// parent (func decl, assignment define, etc.) rather than a use.
func isDeclName(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.FuncDecl:
		return p.Name == id
	case *ast.Field:
		for _, n := range p.Names {
			if n == id {
				return true
			}
		}
	}
	return false
}

// CFG returns (building and memoizing on first use) n's control-flow
// graph.
func (prog *Program) CFG(n *FuncNode) *CFG {
	if n.cfg == nil {
		n.cfg = BuildCFG(n.Decl.Body)
	}
	return n.cfg
}

// unreachableIn reports whether pos falls inside a statically
// unreachable statement of n's body.
func (prog *Program) unreachableIn(n *FuncNode, pos token.Pos) bool {
	for _, s := range prog.CFG(n).Unreachable() {
		if s.Pos() <= pos && pos < s.End() {
			return true
		}
	}
	return false
}

const hotPrefix = "lint:hot"

// markHot attaches //lint:hot directives to their function
// declarations and records orphans.
func (prog *Program) markHot() {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			decls := f.Decls
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text != hotPrefix && !strings.HasPrefix(text, hotPrefix+" ") {
						continue
					}
					line := pkg.Fset.Position(c.Pos()).Line
					attached := false
					for _, decl := range decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok {
							continue
						}
						declLine := pkg.Fset.Position(fd.Pos()).Line
						docStart := declLine
						if fd.Doc != nil {
							docStart = pkg.Fset.Position(fd.Doc.Pos()).Line
						}
						if line == declLine-1 || (line >= docStart && line < declLine) {
							if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
								if n := prog.Funcs[funcKeyOf(pkg, fd, obj)]; n != nil {
									n.Hot = true
									attached = true
								}
							}
						}
					}
					if !attached {
						prog.hotOrphans = append(prog.hotOrphans, orphanDirective{pkg: pkg, pos: c.Pos()})
					}
				}
			}
		}
	}
}

// HotRoots returns the //lint:hot-annotated functions in key order.
func (prog *Program) HotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, n := range prog.nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	return roots
}

// parseAllIgnores parses every package's //lint:ignore directives once,
// validating rule names against the registered analyzer set.
func (prog *Program) parseAllIgnores() {
	for _, pkg := range prog.Pkgs {
		dirs, bad := parseIgnores(pkg)
		for _, d := range dirs {
			prog.ignores[d.file] = append(prog.ignores[d.file], d)
		}
		prog.ignBad = append(prog.ignBad, bad...)
	}
}

// suppressedAt reports whether rule is suppressed by an ignore
// directive on line or line-1 of file.  Interprocedural analyzers use
// it to keep suppressed sites out of their summaries (a collect-then-
// sort map range with a reasoned ignore must not taint its callers).
func (prog *Program) suppressedAt(file string, line int, rule string) bool {
	for _, dir := range prog.ignores[file] {
		if dir.rules[rule] && (dir.line == line || dir.line == line-1) {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the whole program: package-local
// analyzers per package, interprocedural analyzers once, suppressions
// applied program-wide, output sorted.  Per-analyzer wall times are
// recorded for Timings.
func (prog *Program) Run(analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	prog.timings = prog.timings[:0]
	for _, a := range analyzers {
		start := time.Now()
		if a.Run != nil {
			for _, pkg := range prog.Pkgs {
				pass := &Pass{
					Fset:       pkg.Fset,
					Files:      pkg.Files,
					Pkg:        pkg.Types,
					Info:       pkg.Info,
					ImportPath: pkg.ImportPath,
					diags:      &diags,
					rule:       a.Name,
				}
				a.Run(pass)
			}
		}
		if a.RunProgram != nil {
			a.RunProgram(&ProgPass{Prog: prog, diags: &diags, rule: a.Name})
		}
		prog.timings = append(prog.timings, Timing{Name: a.Name, Duration: time.Since(start)})
	}
	diags = prog.filterIgnored(diags)
	diags = append(diags, prog.ignBad...)
	sortDiags(diags)
	return diags
}

// filterIgnored drops diagnostics covered by a same-line or line-above
// //lint:ignore directive anywhere in the program.
func (prog *Program) filterIgnored(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if prog.suppressedAt(d.Pos.Filename, d.Pos.Line, d.Rule) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// ProgPass carries the whole program through one interprocedural
// analyzer.
type ProgPass struct {
	Prog  *Program
	diags *[]Diagnostic
	rule  string
}

// Reportf records a diagnostic at pos, resolved through pkg's file set.
func (p *ProgPass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:  pkg.Fset.Position(pos),
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
