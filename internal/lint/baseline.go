package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is the set of known findings the gate tolerates.  Entries
// are Diagnostic.Key() strings; the file may only shrink — new findings
// fail the gate, and entries that no longer reproduce must be removed
// with -update-baseline so the ratchet can never silently grow.
type Baseline map[string]bool

// ReadBaseline loads a baseline file.  A missing file is an empty
// baseline (the desired steady state), not an error.
func ReadBaseline(path string) (Baseline, error) {
	b := Baseline{}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b[line] = true
	}
	return b, nil
}

// WriteBaseline writes the diagnostics as a sorted baseline file.
func WriteBaseline(path string, diags []Diagnostic) error {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, d.Key())
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# lint baseline — known findings tolerated by the gate.\n")
	b.WriteString("# Regenerate with: go run ./cmd/lint -update-baseline ./...\n")
	b.WriteString("# This file may only shrink; new findings must be fixed or //lint:ignore'd.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Gate splits fresh diagnostics into new findings (not in the baseline)
// and reports stale baseline entries that no longer reproduce.
func Gate(diags []Diagnostic, base Baseline) (fresh []Diagnostic, stale []string) {
	seen := map[string]bool{}
	for _, d := range diags {
		k := d.Key()
		seen[k] = true
		if !base[k] {
			fresh = append(fresh, d)
		}
	}
	for k := range base {
		if !seen[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// FormatDiags renders diagnostics one per line for terminal output.
func FormatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}
