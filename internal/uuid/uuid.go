// Package uuid implements RFC 4122 version-4 (random) UUIDs.
//
// The paper's evaluation workflow assigns every individual a UUID at
// creation time and trains DeePMD inside a directory named after it
// (§2.2.4).  This package provides the same facility without external
// dependencies.
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// UUID is a 128-bit RFC 4122 universally unique identifier.
type UUID [16]byte

// Nil is the zero UUID, with all bits set to zero.
var Nil UUID

// New returns a freshly generated version-4 UUID.  It panics only if the
// operating system's entropy source is broken, which is unrecoverable.
func New() UUID {
	u, err := NewRandom()
	if err != nil {
		panic("uuid: entropy source failure: " + err.Error())
	}
	return u
}

// NewRandom returns a version-4 UUID or an error if reading entropy fails.
func NewRandom() (UUID, error) {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		return Nil, err
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // RFC 4122 variant
	return u, nil
}

// String renders the UUID in canonical 8-4-4-4-12 lower-case hex form.
func (u UUID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], u[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], u[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], u[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], u[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], u[10:16])
	return string(buf[:])
}

// Version reports the UUID version field (4 for values from New).
func (u UUID) Version() int { return int(u[6] >> 4) }

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// ErrInvalidFormat is returned by Parse for malformed input.
var ErrInvalidFormat = errors.New("uuid: invalid format")

// Parse decodes a canonical 8-4-4-4-12 textual UUID.
func Parse(s string) (UUID, error) {
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return Nil, fmt.Errorf("%w: %q", ErrInvalidFormat, s)
	}
	hexOnly := strings.ReplaceAll(s, "-", "")
	raw, err := hex.DecodeString(hexOnly)
	if err != nil {
		return Nil, fmt.Errorf("%w: %q", ErrInvalidFormat, s)
	}
	var u UUID
	copy(u[:], raw)
	return u, nil
}
