package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHasVersion4(t *testing.T) {
	u := New()
	if got := u.Version(); got != 4 {
		t.Fatalf("Version() = %d, want 4", got)
	}
	if u[8]&0xc0 != 0x80 {
		t.Fatalf("variant bits = %#x, want 10xxxxxx", u[8])
	}
}

func TestStringFormat(t *testing.T) {
	u := New()
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("len(String()) = %d, want 36", len(s))
	}
	parts := strings.Split(s, "-")
	wantLens := []int{8, 4, 4, 4, 12}
	if len(parts) != 5 {
		t.Fatalf("String() has %d groups, want 5: %q", len(parts), s)
	}
	for i, p := range parts {
		if len(p) != wantLens[i] {
			t.Errorf("group %d has length %d, want %d", i, len(p), wantLens[i])
		}
	}
	if s != strings.ToLower(s) {
		t.Errorf("String() = %q, want lower-case", s)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		u := New()
		got, err := Parse(u.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", u.String(), err)
		}
		if got != u {
			t.Fatalf("Parse(String()) = %v, want %v", got, u)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-uuid",
		"00000000-0000-0000-0000-00000000000",   // too short
		"00000000-0000-0000-0000-0000000000000", // too long
		"00000000x0000-0000-0000-000000000000",  // wrong separator
		"g0000000-0000-0000-0000-000000000000",  // non-hex
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestUniqueness(t *testing.T) {
	const n = 10000
	seen := make(map[UUID]bool, n)
	for i := 0; i < n; i++ {
		u := New()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d draws: %v", i, u)
		}
		seen[u] = true
	}
}

func TestNilIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if New().IsNil() {
		t.Error("New().IsNil() = true")
	}
}

func TestQuickParseStringInverse(t *testing.T) {
	f := func(raw [16]byte) bool {
		var u UUID = raw
		got, err := Parse(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
