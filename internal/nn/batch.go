package nn

import (
	"fmt"

	"repro/internal/nn/blas"
)

// BatchTrace holds the per-layer state of one batched forward pass — the
// N-row analogue of Trace.  All buffers are owned by the trace and reused
// across calls, so steady-state batched evaluation allocates nothing.
type BatchTrace struct {
	n      int
	input  []float64 // n×In copy of the layer input
	preact []float64 // n×Out pre-activations
	out    []float64 // n×Out activations
	dx     []float64 // n×In input gradients
	dg     []float64 // n×Out activation-scaled upstream gradients
}

// ForwardBatch computes the layer output for n row-major inputs (x is
// n×In) into the trace's reusable buffers and returns the n×Out output
// (owned by the trace).  Each row is arithmetically identical — bit for
// bit — to a scalar Forward of that row: the kernel blocks over rows and
// output columns only, never over the k reduction (see package blas).
//lint:hot
func (d *Dense) ForwardBatch(bt *BatchTrace, x []float64, n int) []float64 {
	if len(x) != n*d.In {
		panic(fmt.Sprintf("nn: batch input %d, want %d×%d", len(x), n, d.In))
	}
	bt.n = n
	bt.input = ensureLen(bt.input, n*d.In)
	copy(bt.input, x)
	bt.preact = ensureLen(bt.preact, n*d.Out)
	bt.out = ensureLen(bt.out, n*d.Out)
	blas.GemmBiasAct(bt.preact, bt.out, bt.input, d.W, d.B, n, d.In, d.Out, d.Act.Apply)
	return bt.out
}

// BackwardBatch accumulates parameter gradients for a recorded batch and
// returns the n×In input gradient (trace-owned).  The sample reduction
// into GradW/GradB runs in ascending row order, so the accumulated
// gradients are bit-identical to n sequential scalar Backward calls over
// the same rows.
func (d *Dense) BackwardBatch(bt *BatchTrace, dy []float64, n int) []float64 {
	bt.checkBatch(d, dy, n)
	d.scaleDeriv(bt, dy, n)
	bt.dx = ensureLen(bt.dx, n*d.In)
	blas.GemmNN(bt.dx, bt.dg, d.W, n, d.In, d.Out)
	blas.AccumGrad(d.GradW, d.GradB, bt.dg, bt.input, n, d.In, d.Out)
	return bt.dx
}

// InputGradBatch returns the n×In input gradient for a recorded batch
// without touching the parameter-gradient accumulators — the batched
// InputGrad used for force inference.
func (d *Dense) InputGradBatch(bt *BatchTrace, dy []float64, n int) []float64 {
	bt.checkBatch(d, dy, n)
	d.scaleDeriv(bt, dy, n)
	bt.dx = ensureLen(bt.dx, n*d.In)
	blas.GemmNN(bt.dx, bt.dg, d.W, n, d.In, d.Out)
	return bt.dx
}

func (bt *BatchTrace) checkBatch(d *Dense, dy []float64, n int) {
	if n != bt.n {
		panic(fmt.Sprintf("nn: batch backward over %d rows, trace recorded %d", n, bt.n))
	}
	if len(dy) != n*d.Out {
		panic(fmt.Sprintf("nn: batch upstream grad %d, want %d×%d", len(dy), n, d.Out))
	}
}

// scaleDeriv fills bt.dg with dy scaled elementwise by the activation
// derivative at the recorded pre-activations.  Activations implementing
// OutputDeriver evaluate the derivative from the recorded outputs instead
// — same bits, no transcendental recompute.
func (d *Dense) scaleDeriv(bt *BatchTrace, dy []float64, n int) {
	bt.dg = ensureLen(bt.dg, n*d.Out)
	dg := bt.dg
	if od, ok := d.Act.(OutputDeriver); ok {
		out := bt.out[:n*d.Out]
		for i, v := range dy {
			dg[i] = v * od.DerivFromOutput(out[i])
		}
		return
	}
	preact := bt.preact[:n*d.Out]
	for i, v := range dy {
		dg[i] = v * d.Act.Deriv(preact[i])
	}
}

// BatchTape records the batch traces of one ForwardBatch pass through an
// MLP so the matching backward pass can be replayed.  Like Tape, a
// BatchTape is reusable across passes (and across networks of identical
// depth); reuse makes the batched forward/backward pair allocation-free
// in steady state.
type BatchTape struct {
	traces []*BatchTrace
}

// ForwardBatch runs the network on n row-major inputs (x is n×InDim),
// recording traces into tape.  The returned n×OutDim output is owned by
// the tape and overwritten by the next call.  Row r of the result is
// bit-identical to ForwardT of row r.
//lint:hot
func (m *MLP) ForwardBatch(tape *BatchTape, x []float64, n int) []float64 {
	if len(tape.traces) != len(m.Layers) {
		tape.traces = make([]*BatchTrace, len(m.Layers))
		for i := range tape.traces {
			tape.traces[i] = &BatchTrace{}
		}
	}
	cur := x
	for i, l := range m.Layers {
		cur = l.ForwardBatch(tape.traces[i], cur, n)
	}
	return cur
}

// BackwardBatch accumulates parameter gradients for the recorded batch
// and returns the n×InDim gradient with respect to the network input.
// Gradient accumulation is bit-identical to replaying the rows through
// scalar Backward in ascending row order.
//lint:hot
func (m *MLP) BackwardBatch(tape *BatchTape, dy []float64, n int) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].BackwardBatch(tape.traces[i], cur, n)
	}
	return cur
}

// InputGradBatch returns the n×InDim input gradient for the recorded
// batch without accumulating parameter gradients.
//lint:hot
func (m *MLP) InputGradBatch(tape *BatchTape, dy []float64, n int) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].InputGradBatch(tape.traces[i], cur, n)
	}
	return cur
}
