// Package nn is a small, dependency-free neural-network library standing in
// for the TensorFlow substrate DeePMD-kit builds on (§2.1.2).  It provides
// dense layers, the five activation functions the paper's EA selects
// between (relu, relu6, softplus, sigmoid, tanh), manual backpropagation
// with input gradients (needed because atomic forces are the negative
// gradient of the predicted energy), SGD and Adam optimizers, and the
// exponentially decaying learning-rate schedule DeePMD uses between
// start_lr and stop_lr.
package nn

import (
	"fmt"
	"math"
)

// Activation is a differentiable scalar nonlinearity applied elementwise.
type Activation interface {
	// Name returns the DeePMD configuration name ("tanh", "relu", …).
	Name() string
	// Apply evaluates the function at x.
	Apply(x float64) float64
	// Deriv evaluates the derivative at x (pre-activation value).
	Deriv(x float64) float64
}

// OutputDeriver is implemented by activations whose derivative can be
// recovered from the activation output y = Apply(x) alone, with bits
// identical to Deriv(x): tanh' = 1−y², sigmoid' = y(1−y), and the
// piecewise-linear ramps, whose output determines the active piece.
// Backward passes use it to skip re-evaluating the transcendental the
// forward pass already computed.  Softplus does not implement it — its
// derivative sigmoid(x) is not recoverable from log1p(exp(x)) without a
// rounding difference.
type OutputDeriver interface {
	DerivFromOutput(y float64) float64
}

// The five activation choices the paper explores for the descriptor and
// fitting networks (§2.2.1).
var (
	ReLU     Activation = relu{}
	ReLU6    Activation = relu6{}
	Softplus Activation = softplus{}
	Sigmoid  Activation = sigmoid{}
	Tanh     Activation = tanhAct{}
	// Identity is used for linear output layers.
	Identity Activation = identity{}
)

// ActivationNames lists the tunable activations in the paper's decoding
// order: floor(gene) % 5 indexes into this slice (§2.2.2).
var ActivationNames = []string{"relu", "relu6", "softplus", "sigmoid", "tanh"}

// ActivationByName resolves a DeePMD activation name.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "relu":
		return ReLU, nil
	case "relu6":
		return ReLU6, nil
	case "softplus":
		return Softplus, nil
	case "sigmoid":
		return Sigmoid, nil
	case "tanh":
		return Tanh, nil
	case "identity", "linear", "none":
		return Identity, nil
	}
	return nil, fmt.Errorf("nn: unknown activation %q", name)
}

type relu struct{}

func (relu) Name() string { return "relu" }
func (relu) Apply(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
func (relu) Deriv(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}
func (relu) DerivFromOutput(y float64) float64 {
	// y = x when x > 0, else 0, so y > 0 iff x > 0.
	if y > 0 {
		return 1
	}
	return 0
}

type relu6 struct{}

func (relu6) Name() string { return "relu6" }
func (relu6) Apply(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 6 {
		return 6
	}
	return x
}
func (relu6) Deriv(x float64) float64 {
	if x > 0 && x < 6 {
		return 1
	}
	return 0
}
func (relu6) DerivFromOutput(y float64) float64 {
	// y = x on the linear piece, saturating to 0 and 6 exactly.
	if y > 0 && y < 6 {
		return 1
	}
	return 0
}

type softplus struct{}

func (softplus) Name() string { return "softplus" }
func (softplus) Apply(x float64) float64 {
	// Numerically stable log(1+exp(x)).
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
func (softplus) Deriv(x float64) float64 { return sigmoidFn(x) }

type sigmoid struct{}

func (sigmoid) Name() string            { return "sigmoid" }
func (sigmoid) Apply(x float64) float64 { return sigmoidFn(x) }
func (sigmoid) Deriv(x float64) float64 {
	s := sigmoidFn(x)
	return s * (1 - s)
}
func (sigmoid) DerivFromOutput(y float64) float64 { return y * (1 - y) }

func sigmoidFn(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

type tanhAct struct{}

func (tanhAct) Name() string            { return "tanh" }
func (tanhAct) Apply(x float64) float64 { return math.Tanh(x) }
func (tanhAct) Deriv(x float64) float64 {
	t := math.Tanh(x)
	return 1 - t*t
}
func (tanhAct) DerivFromOutput(y float64) float64 { return 1 - y*y }

type identity struct{}

func (identity) Name() string                    { return "identity" }
func (identity) Apply(x float64) float64         { return x }
func (identity) Deriv(float64) float64           { return 1 }
func (identity) DerivFromOutput(float64) float64 { return 1 }
