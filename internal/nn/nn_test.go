package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{ReLU, -1, 0}, {ReLU, 2, 2},
		{ReLU6, 7, 6}, {ReLU6, 3, 3}, {ReLU6, -1, 0},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
		{Softplus, 0, math.Log(2)},
		{Identity, -3.5, -3.5},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.act.Name(), c.x, got, c.want)
		}
	}
}

func TestActivationDerivativesFiniteDiff(t *testing.T) {
	const h = 1e-6
	acts := []Activation{ReLU, ReLU6, Softplus, Sigmoid, Tanh, Identity}
	xs := []float64{-5, -2, -0.5, 0.3, 1.7, 5, 5.9, 7}
	for _, a := range acts {
		for _, x := range xs {
			// Skip kink points of piecewise-linear activations.
			if (a == ReLU || a == ReLU6) && (math.Abs(x) < 2*h || math.Abs(x-6) < 2*h) {
				continue
			}
			fd := (a.Apply(x+h) - a.Apply(x-h)) / (2 * h)
			if got := a.Deriv(x); math.Abs(got-fd) > 1e-5 {
				t.Errorf("%s'(%v) = %v, finite diff %v", a.Name(), x, got, fd)
			}
		}
	}
}

func TestSoftplusNumericalStability(t *testing.T) {
	if v := Softplus.Apply(1000); math.IsInf(v, 0) || math.Abs(v-1000) > 1e-9 {
		t.Errorf("Softplus(1000) = %v", v)
	}
	if v := Softplus.Apply(-1000); v != 0 && v > 1e-300 {
		// exp(-1000) underflows to 0; either is acceptable.
		t.Errorf("Softplus(-1000) = %v", v)
	}
	if v := Sigmoid.Apply(-1000); math.IsNaN(v) {
		t.Errorf("Sigmoid(-1000) = NaN")
	}
}

func TestActivationByName(t *testing.T) {
	for _, name := range ActivationNames {
		a, err := ActivationByName(name)
		if err != nil {
			t.Errorf("ActivationByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("ActivationByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ActivationByName("swish"); err == nil {
		t.Error("unknown activation accepted")
	}
}

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 3, 5, Tanh)
	out, tr := d.Forward([]float64{1, 2, 3})
	if len(out) != 5 {
		t.Fatalf("output dim %d, want 5", len(out))
	}
	if tr == nil || len(tr.preact) != 5 {
		t.Fatal("trace missing")
	}
}

func TestDenseKnownValues(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float64{2, -1}, B: []float64{0.5}, Act: Identity,
		GradW: make([]float64, 2), GradB: make([]float64, 1)}
	out, _ := d.Forward([]float64{3, 4})
	// 2*3 - 1*4 + 0.5 = 2.5
	if math.Abs(out[0]-2.5) > 1e-12 {
		t.Errorf("Forward = %v, want 2.5", out[0])
	}
}

// gradCheckMLP verifies parameter and input gradients of a network against
// central finite differences on a scalar loss L = sum(y²)/2.
func gradCheckMLP(t *testing.T, act Activation) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 4, []int{6, 5}, 2, act)
	x := []float64{0.3, -0.7, 1.1, 0.2}

	loss := func() float64 {
		y, _ := m.Forward(x)
		s := 0.0
		for _, v := range y {
			s += v * v
		}
		return s / 2
	}

	// Analytic gradients.
	m.ZeroGrad()
	y, tape := m.Forward(x)
	dy := make([]float64, len(y))
	copy(dy, y) // dL/dy = y
	dx := m.Backward(tape, dy)

	const h = 1e-6
	// Parameter gradients.
	for pi, pg := range m.Params() {
		for j := 0; j < len(pg.Param); j += 7 { // sample every 7th parameter
			orig := pg.Param[j]
			pg.Param[j] = orig + h
			lp := loss()
			pg.Param[j] = orig - h
			lm := loss()
			pg.Param[j] = orig
			fd := (lp - lm) / (2 * h)
			if math.Abs(fd-pg.Grad[j]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("%s param %d[%d]: grad %v, finite diff %v", act.Name(), pi, j, pg.Grad[j], fd)
			}
		}
	}
	// Input gradients.
	for j := range x {
		orig := x[j]
		x[j] = orig + h
		lp := loss()
		x[j] = orig - h
		lm := loss()
		x[j] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-dx[j]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("%s input grad[%d]: %v, finite diff %v", act.Name(), j, dx[j], fd)
		}
	}
}

func TestMLPGradientsTanh(t *testing.T)     { gradCheckMLP(t, Tanh) }
func TestMLPGradientsSigmoid(t *testing.T)  { gradCheckMLP(t, Sigmoid) }
func TestMLPGradientsSoftplus(t *testing.T) { gradCheckMLP(t, Softplus) }

func TestMLPInputGradMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, 3, []int{4}, 1, Tanh)
	x := []float64{0.1, 0.2, 0.3}
	_, tape := m.Forward(x)
	dy := []float64{1}
	m.ZeroGrad()
	dxB := m.Backward(tape, dy)
	_, tape2 := m.Forward(x)
	dxI := m.InputGrad(tape2, dy)
	for i := range dxB {
		if math.Abs(dxB[i]-dxI[i]) > 1e-12 {
			t.Errorf("InputGrad[%d] = %v, Backward dx = %v", i, dxI[i], dxB[i])
		}
	}
	// InputGrad must not have touched parameter gradients.
	m.ZeroGrad()
	_, tape3 := m.Forward(x)
	m.InputGrad(tape3, dy)
	for _, pg := range m.Params() {
		for _, g := range pg.Grad {
			if g != 0 {
				t.Fatal("InputGrad accumulated parameter gradients")
			}
		}
	}
}

func TestGradientsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, 2, nil, 1, Identity)
	x := []float64{1, 2}
	dy := []float64{1}
	m.ZeroGrad()
	_, tape := m.Forward(x)
	m.Backward(tape, dy)
	g1 := append([]float64(nil), m.Layers[0].GradW...)
	_, tape = m.Forward(x)
	m.Backward(tape, dy)
	for i := range g1 {
		if math.Abs(m.Layers[0].GradW[i]-2*g1[i]) > 1e-12 {
			t.Errorf("gradient did not accumulate: %v vs 2*%v", m.Layers[0].GradW[i], g1[i])
		}
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	// Minimize (w-3)² with SGD: parameter must approach 3.
	w := []float64{0}
	g := []float64{0}
	params := []ParamGrad{{Param: w, Grad: g}}
	opt := NewSGD(0)
	for i := 0; i < 200; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(params, 0.1)
	}
	if math.Abs(w[0]-3) > 1e-6 {
		t.Errorf("SGD converged to %v, want 3", w[0])
	}
}

func TestSGDMomentumReducesQuadratic(t *testing.T) {
	w := []float64{0}
	g := []float64{0}
	params := []ParamGrad{{Param: w, Grad: g}}
	opt := NewSGD(0.9)
	for i := 0; i < 400; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(params, 0.01)
	}
	if math.Abs(w[0]-3) > 1e-4 {
		t.Errorf("momentum SGD converged to %v, want 3", w[0])
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	w := []float64{-5}
	g := []float64{0}
	params := []ParamGrad{{Param: w, Grad: g}}
	opt := NewAdam()
	for i := 0; i < 3000; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(params, 0.05)
	}
	if math.Abs(w[0]-3) > 1e-3 {
		t.Errorf("Adam converged to %v, want 3", w[0])
	}
}

func TestMLPTrainsXORWithAdam(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 2, []int{8}, 1, Tanh)
	opt := NewAdam()
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		m.ZeroGrad()
		for k, x := range inputs {
			y, tape := m.Forward(x)
			m.Backward(tape, []float64{y[0] - targets[k]})
		}
		opt.Step(m.Params(), 0.01)
	}
	for k, x := range inputs {
		y, _ := m.Forward(x)
		if math.Abs(y[0]-targets[k]) > 0.2 {
			t.Errorf("XOR(%v) = %v, want %v", x, y[0], targets[k])
		}
	}
}

func TestExpDecayScheduleEndpoints(t *testing.T) {
	s := ExpDecaySchedule{Start: 0.01, Stop: 1e-5, TotalSteps: 1000}
	if got := s.At(0); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("At(0) = %v, want 0.01", got)
	}
	if got := s.At(1000); math.Abs(got-1e-5) > 1e-15 {
		t.Errorf("At(1000) = %v, want 1e-5", got)
	}
	if got := s.At(2000); math.Abs(got-1e-5) > 1e-15 {
		t.Errorf("At(2000) = %v, want clamp to 1e-5", got)
	}
	if got := s.At(-5); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("At(-5) = %v, want clamp to 0.01", got)
	}
}

func TestExpDecayMonotone(t *testing.T) {
	s := ExpDecaySchedule{Start: 0.01, Stop: 1e-6, TotalSteps: 500}
	prev := math.Inf(1)
	for t_ := 0; t_ <= 500; t_ += 25 {
		lr := s.At(t_)
		if lr > prev {
			t.Fatalf("schedule not monotone at %d: %v > %v", t_, lr, prev)
		}
		prev = lr
	}
}

func TestQuickExpDecayWithinBounds(t *testing.T) {
	s := ExpDecaySchedule{Start: 0.01, Stop: 1e-6, TotalSteps: 777}
	f := func(step int) bool {
		lr := s.At(step)
		return lr <= s.Start+1e-18 && lr >= s.Stop-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkerScale(t *testing.T) {
	cases := []struct {
		scheme string
		n      int
		want   float64
	}{
		{"linear", 6, 0.006},
		{"sqrt", 4, 0.002},
		{"none", 6, 0.001},
		{"bogus", 6, 0.001},
		{"linear", 1, 0.001},
	}
	for _, c := range cases {
		if got := WorkerScale(c.scheme, 0.001, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WorkerScale(%q, 0.001, %d) = %v, want %v", c.scheme, c.n, got, c.want)
		}
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 3, []int{5, 7}, 2, Tanh)
	want := (3*5 + 5) + (5*7 + 7) + (7*2 + 2)
	if got := m.ParamCount(); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestDensePanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 3, 2, Tanh)
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong input size did not panic")
		}
	}()
	d.Forward([]float64{1})
}
