package nn

import (
	"math/rand"
	"testing"
)

// TestSteadyStateAllocs pins the hot paths to zero allocations per call
// once their reusable traces are warm.  A regression here usually means a
// buffer stopped being recycled (e.g. an ensureLen path lost) or an
// interface method value started escaping in the blas epilogue.
func TestSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 40, []int{24, 24}, 1, Tanh)
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const n = 8
	xb := make([]float64, n*40)
	for i := range xb {
		xb[i] = rng.NormFloat64()
	}
	dy := []float64{1}
	dyb := make([]float64, n)
	for i := range dyb {
		dyb[i] = 1
	}

	d := m.Layers[0]
	tr := &Trace{}
	tape := &Tape{}
	btape := &BatchTape{}
	bt := &BatchTrace{}
	// Warm every buffer once outside the measured runs.
	d.ForwardInto(tr, x)
	m.ForwardT(tape, x)
	m.Backward(tape, dy)
	m.ForwardBatch(btape, xb, n)
	m.BackwardBatch(btape, dyb, n)
	d.ForwardBatch(bt, xb, n)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Dense.ForwardInto", func() { d.ForwardInto(tr, x) }},
		{"Dense.ForwardBatch", func() { d.ForwardBatch(bt, xb, n) }},
		{"MLP.ForwardT", func() { m.ForwardT(tape, x) }},
		{"MLP.Backward", func() { m.ForwardT(tape, x); m.Backward(tape, dy) }},
		{"MLP.InputGrad", func() { m.ForwardT(tape, x); m.InputGrad(tape, dy) }},
		{"MLP.ForwardBatch", func() { m.ForwardBatch(btape, xb, n) }},
		{"MLP.BackwardBatch", func() { m.ForwardBatch(btape, xb, n); m.BackwardBatch(btape, dyb, n) }},
		{"MLP.InputGradBatch", func() { m.ForwardBatch(btape, xb, n); m.InputGradBatch(btape, dyb, n) }},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(20, tc.fn); got != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, got)
		}
	}
}

// TestForwardAllocsOnce pins Dense.Forward's cost at exactly the trace
// plus its three buffers on first use; hot loops avoid even that via
// ForwardInto.
func TestForwardAllocsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense(rng, 16, 8, Tanh)
	x := make([]float64, 16)
	got := testing.AllocsPerRun(20, func() { d.Forward(x) })
	// Trace struct + input + preact + out buffers.
	if got > 4 {
		t.Errorf("Dense.Forward: %v allocs/op, want <= 4", got)
	}
}
