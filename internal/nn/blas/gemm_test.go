package blas

import (
	"math"
	"math/rand"
	"testing"
)

// scalarForward is the reference: the per-sample loop from nn's
// Dense.forwardInto, applied row by row.
func scalarForward(preact, out, x, w, bias []float64, n, in, outDim int, act func(float64) float64) {
	for r := 0; r < n; r++ {
		xr := x[r*in : (r+1)*in]
		for o := 0; o < outDim; o++ {
			s := bias[o]
			row := w[o*in : (o+1)*in]
			for k, xk := range xr {
				s += row[k] * xk
			}
			preact[r*outDim+o] = s
			out[r*outDim+o] = act(s)
		}
	}
}

// refBackward is the bit-exact scalar reference for GemmNN + AccumGrad:
// n sequential per-sample Backward calls (outputs outermost, dx zeroed
// per sample) with weights wm, mirroring nn's Dense.Backward.
func refBackward(dx, gradW, gradB, g, x, wm []float64, n, in, outDim int) {
	for r := 0; r < n; r++ {
		dr := dx[r*in : (r+1)*in]
		for i := range dr {
			dr[i] = 0
		}
		xr := x[r*in : (r+1)*in]
		for o := 0; o < outDim; o++ {
			a := g[r*outDim+o]
			gradB[o] += a
			row := wm[o*in : (o+1)*in]
			grow := gradW[o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				grow[i] += a * xr[i]
				dr[i] += a * row[i]
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// shapes covers n = 0, 1, exact blocks, ragged tails, and k/i remainder
// lanes.
var shapes = []struct{ n, in, out int }{
	{0, 3, 2}, {1, 1, 1}, {1, 5, 3}, {2, 4, 4}, {3, 7, 2}, {4, 8, 8},
	{5, 3, 9}, {7, 13, 5}, {8, 16, 4}, {9, 6, 6}, {16, 1, 10}, {33, 10, 7},
}

func TestGemmBiasActMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	act := math.Tanh
	for _, sh := range shapes {
		x := randSlice(rng, sh.n*sh.in)
		wm := randSlice(rng, sh.out*sh.in)
		bias := randSlice(rng, sh.out)
		gotP := make([]float64, sh.n*sh.out)
		gotY := make([]float64, sh.n*sh.out)
		wantP := make([]float64, sh.n*sh.out)
		wantY := make([]float64, sh.n*sh.out)
		GemmBiasAct(gotP, gotY, x, wm, bias, sh.n, sh.in, sh.out, act)
		scalarForward(wantP, wantY, x, wm, bias, sh.n, sh.in, sh.out, act)
		for i := range wantP {
			if gotP[i] != wantP[i] || gotY[i] != wantY[i] {
				t.Fatalf("shape %+v: element %d: preact %v vs %v, out %v vs %v",
					sh, i, gotP[i], wantP[i], gotY[i], wantY[i])
			}
		}
	}
}

func TestBackwardKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		x := randSlice(rng, sh.n*sh.in)
		wm := randSlice(rng, sh.out*sh.in)
		g := randSlice(rng, sh.n*sh.out)
		// Start both gradient accumulators from the same nonzero state so
		// the test also pins the += accumulation order.
		seedW := randSlice(rng, sh.out*sh.in)
		seedB := randSlice(rng, sh.out)

		gotDx := make([]float64, sh.n*sh.in)
		gotW := append([]float64(nil), seedW...)
		gotB := append([]float64(nil), seedB...)
		GemmNN(gotDx, g, wm, sh.n, sh.in, sh.out)
		AccumGrad(gotW, gotB, g, x, sh.n, sh.in, sh.out)

		wantDx := make([]float64, sh.n*sh.in)
		wantW := append([]float64(nil), seedW...)
		wantB := append([]float64(nil), seedB...)
		refBackward(wantDx, wantW, wantB, g, x, wm, sh.n, sh.in, sh.out)

		for i := range wantDx {
			if gotDx[i] != wantDx[i] {
				t.Fatalf("shape %+v: dx[%d] = %v, want %v", sh, i, gotDx[i], wantDx[i])
			}
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("shape %+v: gradW[%d] = %v, want %v", sh, i, gotW[i], wantW[i])
			}
		}
		for i := range wantB {
			if gotB[i] != wantB[i] {
				t.Fatalf("shape %+v: gradB[%d] = %v, want %v", sh, i, gotB[i], wantB[i])
			}
		}
	}
}

func TestGemmNNOverwritesDx(t *testing.T) {
	// dx must be fully overwritten, not accumulated into.
	wm := []float64{1, 2, 3, 4}
	g := []float64{1, 1}
	dx := []float64{99, 99}
	GemmNN(dx, g, wm, 1, 2, 2)
	if dx[0] != 1+3 || dx[1] != 2+4 {
		t.Fatalf("dx = %v, want [4 6]", dx)
	}
}
