// Package blas holds the cache-blocked, register-blocked batched kernels
// behind nn's ForwardBatch/BackwardBatch paths.  Everything is row-major
// float64, shaped exactly like the scalar loops in internal/nn:
//
//	x      n×in        batch of inputs (rows are samples)
//	w      out×in      layer weights, w[o][k] at o*in+k
//	g      n×out       upstream gradients scaled by the activation
//	                   derivative
//
// Fixed-reduction-order contract: for every output element the reduction
// index — k (inputs) in the forward pass, o (outputs) in the
// input-gradient pass, r (samples) in the parameter-gradient pass — is
// summed strictly in ascending order into a single accumulator, exactly
// like the scalar per-sample loops.  Blocking and unrolling are applied
// only across rows and output columns (independent accumulators) or as
// sequential adds into one accumulator, never as a reassociation of a
// reduction.  Go does not reorder floating-point arithmetic, so every
// kernel here is bit-identical to its scalar counterpart for any batch
// size, which is what keeps lcurve.out and the golden campaign byte-stable
// with batching enabled.
package blas

// GemmBiasAct computes the fused dense forward pass over a batch:
//
//	preact[r][o] = bias[o] + Σ_k x[r][k]·w[o][k]   (k ascending)
//	out[r][o]    = act(preact[r][o])
//
// preact and out are n×out and fully overwritten.  Rows are processed in
// blocks of eight (then four) so each weight row is loaded once per
// block; the k loop is unrolled with sequential adds into each row's
// accumulator, preserving the scalar summation order bit-for-bit.
func GemmBiasAct(preact, out, x, w, bias []float64, n, in, outDim int, act func(float64) float64) {
	r := 0
	for ; r+8 <= n; r += 8 {
		x0 := x[r*in : r*in+in]
		x1 := x[(r+1)*in : (r+1)*in+in]
		x2 := x[(r+2)*in : (r+2)*in+in]
		x3 := x[(r+3)*in : (r+3)*in+in]
		x4 := x[(r+4)*in : (r+4)*in+in]
		x5 := x[(r+5)*in : (r+5)*in+in]
		x6 := x[(r+6)*in : (r+6)*in+in]
		x7 := x[(r+7)*in : (r+7)*in+in]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : o*in+in]
			b := bias[o]
			s0, s1, s2, s3 := b, b, b, b
			s4, s5, s6, s7 := b, b, b, b
			k := 0
			for ; k+2 <= in; k += 2 {
				w0, w1 := wrow[k], wrow[k+1]
				s0 += w0 * x0[k]
				s0 += w1 * x0[k+1]
				s1 += w0 * x1[k]
				s1 += w1 * x1[k+1]
				s2 += w0 * x2[k]
				s2 += w1 * x2[k+1]
				s3 += w0 * x3[k]
				s3 += w1 * x3[k+1]
				s4 += w0 * x4[k]
				s4 += w1 * x4[k+1]
				s5 += w0 * x5[k]
				s5 += w1 * x5[k+1]
				s6 += w0 * x6[k]
				s6 += w1 * x6[k+1]
				s7 += w0 * x7[k]
				s7 += w1 * x7[k+1]
			}
			for ; k < in; k++ {
				wk := wrow[k]
				s0 += wk * x0[k]
				s1 += wk * x1[k]
				s2 += wk * x2[k]
				s3 += wk * x3[k]
				s4 += wk * x4[k]
				s5 += wk * x5[k]
				s6 += wk * x6[k]
				s7 += wk * x7[k]
			}
			preact[r*outDim+o], out[r*outDim+o] = s0, act(s0)
			preact[(r+1)*outDim+o], out[(r+1)*outDim+o] = s1, act(s1)
			preact[(r+2)*outDim+o], out[(r+2)*outDim+o] = s2, act(s2)
			preact[(r+3)*outDim+o], out[(r+3)*outDim+o] = s3, act(s3)
			preact[(r+4)*outDim+o], out[(r+4)*outDim+o] = s4, act(s4)
			preact[(r+5)*outDim+o], out[(r+5)*outDim+o] = s5, act(s5)
			preact[(r+6)*outDim+o], out[(r+6)*outDim+o] = s6, act(s6)
			preact[(r+7)*outDim+o], out[(r+7)*outDim+o] = s7, act(s7)
		}
	}
	for ; r+4 <= n; r += 4 {
		x0 := x[r*in : r*in+in]
		x1 := x[(r+1)*in : (r+1)*in+in]
		x2 := x[(r+2)*in : (r+2)*in+in]
		x3 := x[(r+3)*in : (r+3)*in+in]
		p0 := preact[r*outDim : r*outDim+outDim]
		p1 := preact[(r+1)*outDim : (r+1)*outDim+outDim]
		p2 := preact[(r+2)*outDim : (r+2)*outDim+outDim]
		p3 := preact[(r+3)*outDim : (r+3)*outDim+outDim]
		y0 := out[r*outDim : r*outDim+outDim]
		y1 := out[(r+1)*outDim : (r+1)*outDim+outDim]
		y2 := out[(r+2)*outDim : (r+2)*outDim+outDim]
		y3 := out[(r+3)*outDim : (r+3)*outDim+outDim]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : o*in+in]
			b := bias[o]
			s0, s1, s2, s3 := b, b, b, b
			k := 0
			for ; k+4 <= in; k += 4 {
				w0, w1, w2, w3 := wrow[k], wrow[k+1], wrow[k+2], wrow[k+3]
				s0 += w0 * x0[k]
				s0 += w1 * x0[k+1]
				s0 += w2 * x0[k+2]
				s0 += w3 * x0[k+3]
				s1 += w0 * x1[k]
				s1 += w1 * x1[k+1]
				s1 += w2 * x1[k+2]
				s1 += w3 * x1[k+3]
				s2 += w0 * x2[k]
				s2 += w1 * x2[k+1]
				s2 += w2 * x2[k+2]
				s2 += w3 * x2[k+3]
				s3 += w0 * x3[k]
				s3 += w1 * x3[k+1]
				s3 += w2 * x3[k+2]
				s3 += w3 * x3[k+3]
			}
			for ; k < in; k++ {
				wk := wrow[k]
				s0 += wk * x0[k]
				s1 += wk * x1[k]
				s2 += wk * x2[k]
				s3 += wk * x3[k]
			}
			p0[o], p1[o], p2[o], p3[o] = s0, s1, s2, s3
			y0[o], y1[o], y2[o], y3[o] = act(s0), act(s1), act(s2), act(s3)
		}
	}
	for ; r < n; r++ { // ragged tail, one row at a time
		xr := x[r*in : r*in+in]
		pr := preact[r*outDim : r*outDim+outDim]
		yr := out[r*outDim : r*outDim+outDim]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : o*in+in]
			s := bias[o]
			k := 0
			for ; k+4 <= in; k += 4 {
				s += wrow[k] * xr[k]
				s += wrow[k+1] * xr[k+1]
				s += wrow[k+2] * xr[k+2]
				s += wrow[k+3] * xr[k+3]
			}
			for ; k < in; k++ {
				s += wrow[k] * xr[k]
			}
			pr[o] = s
			yr[o] = act(s)
		}
	}
}

// GemmNN computes the transpose-aware input-gradient product dX = G·W:
//
//	dx[r][i] = Σ_o g[r][o]·w[o][i]   (o ascending)
//
// dx is n×in and fully overwritten.  The o loop is outermost per row
// block — matching the scalar Backward, which walks outputs outermost —
// so each dx element accumulates its o terms in the scalar order; the
// four-wide unroll is across i (independent accumulators).
func GemmNN(dx, g, w []float64, n, in, outDim int) {
	dx = dx[:n*in]
	for i := range dx {
		dx[i] = 0
	}
	r := 0
	for ; r+4 <= n; r += 4 {
		d0 := dx[r*in : r*in+in]
		d1 := dx[(r+1)*in : (r+1)*in+in]
		d2 := dx[(r+2)*in : (r+2)*in+in]
		d3 := dx[(r+3)*in : (r+3)*in+in]
		g0 := g[r*outDim : r*outDim+outDim]
		g1 := g[(r+1)*outDim : (r+1)*outDim+outDim]
		g2 := g[(r+2)*outDim : (r+2)*outDim+outDim]
		g3 := g[(r+3)*outDim : (r+3)*outDim+outDim]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : o*in+in]
			a0, a1, a2, a3 := g0[o], g1[o], g2[o], g3[o]
			k := 0
			for ; k+4 <= in; k += 4 {
				w0, w1, w2, w3 := wrow[k], wrow[k+1], wrow[k+2], wrow[k+3]
				d0[k] += a0 * w0
				d0[k+1] += a0 * w1
				d0[k+2] += a0 * w2
				d0[k+3] += a0 * w3
				d1[k] += a1 * w0
				d1[k+1] += a1 * w1
				d1[k+2] += a1 * w2
				d1[k+3] += a1 * w3
				d2[k] += a2 * w0
				d2[k+1] += a2 * w1
				d2[k+2] += a2 * w2
				d2[k+3] += a2 * w3
				d3[k] += a3 * w0
				d3[k+1] += a3 * w1
				d3[k+2] += a3 * w2
				d3[k+3] += a3 * w3
			}
			for ; k < in; k++ {
				wk := wrow[k]
				d0[k] += a0 * wk
				d1[k] += a1 * wk
				d2[k] += a2 * wk
				d3[k] += a3 * wk
			}
		}
	}
	for ; r < n; r++ {
		dr := dx[r*in : r*in+in]
		gr := g[r*outDim : r*outDim+outDim]
		for o := 0; o < outDim; o++ {
			wrow := w[o*in : o*in+in]
			a := gr[o]
			k := 0
			for ; k+4 <= in; k += 4 {
				dr[k] += a * wrow[k]
				dr[k+1] += a * wrow[k+1]
				dr[k+2] += a * wrow[k+2]
				dr[k+3] += a * wrow[k+3]
			}
			for ; k < in; k++ {
				dr[k] += a * wrow[k]
			}
		}
	}
}

// AccumGrad accumulates the transpose-aware parameter gradients
// dW += Gᵀ·X and dB += column sums of G:
//
//	gradW[o][i] += Σ_r g[r][o]·x[r][i]   (r ascending)
//	gradB[o]    += Σ_r g[r][o]           (r ascending)
//
// The sample reduction is a sequence of rank-1 updates applied in
// ascending row order — four rows are loaded per block but their terms
// are added one after another into each accumulator, so the result is
// bit-identical to n sequential scalar Backward calls.
func AccumGrad(gradW, gradB, g, x []float64, n, in, outDim int) {
	r := 0
	for ; r+4 <= n; r += 4 {
		x0 := x[r*in : r*in+in]
		x1 := x[(r+1)*in : (r+1)*in+in]
		x2 := x[(r+2)*in : (r+2)*in+in]
		x3 := x[(r+3)*in : (r+3)*in+in]
		g0 := g[r*outDim : r*outDim+outDim]
		g1 := g[(r+1)*outDim : (r+1)*outDim+outDim]
		g2 := g[(r+2)*outDim : (r+2)*outDim+outDim]
		g3 := g[(r+3)*outDim : (r+3)*outDim+outDim]
		for o := 0; o < outDim; o++ {
			a0, a1, a2, a3 := g0[o], g1[o], g2[o], g3[o]
			b := gradB[o]
			b += a0
			b += a1
			b += a2
			b += a3
			gradB[o] = b
			grow := gradW[o*in : o*in+in]
			for k := 0; k < in; k++ {
				s := grow[k]
				s += a0 * x0[k]
				s += a1 * x1[k]
				s += a2 * x2[k]
				s += a3 * x3[k]
				grow[k] = s
			}
		}
	}
	for ; r < n; r++ {
		xr := x[r*in : r*in+in]
		gr := g[r*outDim : r*outDim+outDim]
		for o := 0; o < outDim; o++ {
			a := gr[o]
			gradB[o] += a
			grow := gradW[o*in : o*in+in]
			k := 0
			for ; k+4 <= in; k += 4 {
				grow[k] += a * xr[k]
				grow[k+1] += a * xr[k+1]
				grow[k+2] += a * xr[k+2]
				grow[k+3] += a * xr[k+3]
			}
			for ; k < in; k++ {
				grow[k] += a * xr[k]
			}
		}
	}
}
