package nn

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkFittingNetForward measures the paper's fitting network
// ({240,240,240} on a 400-dim descriptor) forward pass.
func BenchmarkFittingNetForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkFittingNetBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_, tape := m.Forward(x)
	dy := []float64{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Backward(tape, dy)
	}
}

// benchBatchSizes are the batch widths the scalar/batched pairs below
// compare; 16 matches deepmd's fitTile, 64 a typical neighbour count.
var benchBatchSizes = []int{16, 64}

// BenchmarkFittingNetForwardScalar evaluates n samples through the
// fitting network one ForwardT at a time — the pre-kernel hot path.
// Paired with BenchmarkFittingNetForwardBatch, same totals per op.
func BenchmarkFittingNetForwardScalar(b *testing.B) {
	for _, n := range benchBatchSizes {
		b.Run(benchName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
			x := make([]float64, n*400)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			tape := &Tape{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					m.ForwardT(tape, x[r*400:(r+1)*400])
				}
			}
		})
	}
}

// BenchmarkFittingNetForwardBatch evaluates the same n samples as one
// ForwardBatch call through the blas kernels.
func BenchmarkFittingNetForwardBatch(b *testing.B) {
	for _, n := range benchBatchSizes {
		b.Run(benchName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
			x := make([]float64, n*400)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			tape := &BatchTape{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardBatch(tape, x, n)
			}
		})
	}
}

// BenchmarkFittingNetBackwardScalar runs n scalar forward+backward pairs
// per op; its partner below runs one batched pair over the same rows.
func BenchmarkFittingNetBackwardScalar(b *testing.B) {
	for _, n := range benchBatchSizes {
		b.Run(benchName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
			x := make([]float64, n*400)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			tape := &Tape{}
			dy := []float64{1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					m.ForwardT(tape, x[r*400:(r+1)*400])
					m.Backward(tape, dy)
				}
			}
		})
	}
}

func BenchmarkFittingNetBackwardBatch(b *testing.B) {
	for _, n := range benchBatchSizes {
		b.Run(benchName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
			x := make([]float64, n*400)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			tape := &BatchTape{}
			dy := make([]float64, n)
			for i := range dy {
				dy[i] = 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardBatch(tape, x, n)
				m.BackwardBatch(tape, dy, n)
			}
		})
	}
}

func benchName(n int) string { return fmt.Sprintf("n=%d", n) }

// BenchmarkActivations compares the five tunable activations — the cost
// differences feed the surrogate's runtime model.
func BenchmarkActivations(b *testing.B) {
	for _, act := range []Activation{ReLU, ReLU6, Softplus, Sigmoid, Tanh} {
		b.Run(act.Name(), func(b *testing.B) {
			sink := 0.0
			for i := 0; i < b.N; i++ {
				x := float64(i%200)/20 - 5
				sink += act.Apply(x) + act.Deriv(x)
			}
			_ = sink
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	params := m.Params()
	for _, pg := range params {
		for i := range pg.Grad {
			pg.Grad[i] = rng.NormFloat64()
		}
	}
	opt := NewAdam()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params, 1e-3)
	}
}
