package nn

import (
	"math/rand"
	"testing"
)

// BenchmarkFittingNetForward measures the paper's fitting network
// ({240,240,240} on a 400-dim descriptor) forward pass.
func BenchmarkFittingNetForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkFittingNetBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	_, tape := m.Forward(x)
	dy := []float64{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Backward(tape, dy)
	}
}

// BenchmarkActivations compares the five tunable activations — the cost
// differences feed the surrogate's runtime model.
func BenchmarkActivations(b *testing.B) {
	for _, act := range []Activation{ReLU, ReLU6, Softplus, Sigmoid, Tanh} {
		b.Run(act.Name(), func(b *testing.B) {
			sink := 0.0
			for i := 0; i < b.N; i++ {
				x := float64(i%200)/20 - 5
				sink += act.Apply(x) + act.Deriv(x)
			}
			_ = sink
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 400, []int{240, 240, 240}, 1, Tanh)
	params := m.Params()
	for _, pg := range params {
		for i := range pg.Grad {
			pg.Grad[i] = rng.NormFloat64()
		}
	}
	opt := NewAdam()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(params, 1e-3)
	}
}
