package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer y = act(W·x + b) with weights stored
// row-major: W[out][in] at index out*In + in.
type Dense struct {
	In, Out int
	W       []float64 // len In*Out
	B       []float64 // len Out
	Act     Activation

	// Gradient accumulators, same shapes as W and B.
	GradW []float64
	GradB []float64
}

// NewDense creates a layer with Glorot/Xavier-uniform initialized weights,
// the TensorFlow default DeePMD-kit inherits.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out),
		GradW: make([]float64, in*out), GradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (2*rng.Float64() - 1) * limit
	}
	return d
}

// Trace holds per-sample state needed for backprop.  All buffers are
// owned by the trace and reused when the trace is replayed through
// ForwardInto/Backward, so a trace-reusing caller allocates nothing in
// steady state.
type Trace struct {
	input  []float64
	preact []float64
	out    []float64
	dx     []float64
}

// ensureLen returns buf resized to n, reusing its backing array when the
// capacity allows.
func ensureLen(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// forwardInto computes the layer output into the trace's reusable
// buffers and returns the output slice (owned by the trace).
func (d *Dense) forwardInto(tr *Trace, x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", len(x), d.In))
	}
	tr.input = ensureLen(tr.input, d.In)
	copy(tr.input, x)
	tr.preact = ensureLen(tr.preact, d.Out)
	tr.out = ensureLen(tr.out, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		tr.preact[o] = s
		tr.out[o] = d.Act.Apply(s)
	}
	return tr.out
}

// Forward computes the layer output for input x, returning the output and
// a trace for Backward.  The trace keeps Forward re-entrant so a single
// layer can serve many atoms in one configuration.  Forward allocates the
// trace; hot loops should hold one Trace and call ForwardInto instead.
func (d *Dense) Forward(x []float64) (out []float64, tr *Trace) {
	tr = &Trace{}
	return d.forwardInto(tr, x), tr
}

// ForwardInto is Forward with a caller-owned reusable trace: passing the
// same Trace back recycles its buffers, so repeated calls allocate
// nothing in steady state.  The returned output is trace-owned.
//lint:hot
func (d *Dense) ForwardInto(tr *Trace, x []float64) []float64 {
	return d.forwardInto(tr, x)
}

// Backward accumulates parameter gradients given the upstream gradient
// dL/dy and returns dL/dx.  The returned slice is owned by the trace and
// overwritten by the next Backward/InputGrad replay of the same trace.
// Call ZeroGrad before a new minibatch.
func (d *Dense) Backward(tr *Trace, dy []float64) (dx []float64) {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: dense upstream grad %d, want %d", len(dy), d.Out))
	}
	tr.dx = ensureLen(tr.dx, d.In)
	dx = tr.dx
	for i := range dx {
		dx[i] = 0
	}
	od, hasOD := d.Act.(OutputDeriver)
	for o := 0; o < d.Out; o++ {
		var g float64
		if hasOD {
			g = dy[o] * od.DerivFromOutput(tr.out[o])
		} else {
			g = dy[o] * d.Act.Deriv(tr.preact[o])
		}
		d.GradB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GradW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * tr.input[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// InputGrad returns dL/dx without touching the parameter-gradient
// accumulators; used for force evaluation at inference time where only the
// energy gradient with respect to coordinates is needed.  The returned
// slice is trace-owned scratch, like Backward's.
func (d *Dense) InputGrad(tr *Trace, dy []float64) (dx []float64) {
	tr.dx = ensureLen(tr.dx, d.In)
	dx = tr.dx
	for i := range dx {
		dx[i] = 0
	}
	od, hasOD := d.Act.(OutputDeriver)
	for o := 0; o < d.Out; o++ {
		var g float64
		if hasOD {
			g = dy[o] * od.DerivFromOutput(tr.out[o])
		} else {
			g = dy[o] * d.Act.Deriv(tr.preact[o])
		}
		row := d.W[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			dx[i] += g * row[i]
		}
	}
	return dx
}

// ShadowClone returns a layer sharing this layer's parameters (W and B
// alias the receiver's storage) but owning fresh, zeroed gradient
// accumulators.  Shadow layers let concurrent workers accumulate
// gradients without racing on the shared accumulators; the shards are
// merged with AddGradsAndReset.
func (d *Dense) ShadowClone() *Dense {
	return &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W: d.W, B: d.B,
		GradW: make([]float64, len(d.GradW)),
		GradB: make([]float64, len(d.GradB)),
	}
}

// ZeroGrad clears the gradient accumulators.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW {
		d.GradW[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// ParamCount returns the number of trainable parameters.
func (d *Dense) ParamCount() int { return len(d.W) + len(d.B) }

// MLP is a feed-forward stack of dense layers.
type MLP struct {
	Layers []*Dense

	// params caches the Params() view; built once by the constructors so
	// hot loops don't rebuild the slice every call.
	params []ParamGrad
}

// NewMLP builds a network with the given hidden sizes and activation,
// ending in a linear layer of outDim units.  hidden may be empty.  This
// mirrors DeePMD's fitting network: hidden layers share one activation and
// the output is linear.
func NewMLP(rng *rand.Rand, inDim int, hidden []int, outDim int, act Activation) *MLP {
	m := &MLP{}
	prev := inDim
	for _, h := range hidden {
		m.Layers = append(m.Layers, NewDense(rng, prev, h, act))
		prev = h
	}
	m.Layers = append(m.Layers, NewDense(rng, prev, outDim, Identity))
	m.params = m.buildParams()
	return m
}

// ShadowClone returns an MLP whose layers share the receiver's parameters
// but own private gradient accumulators.  See Dense.ShadowClone.
func (m *MLP) ShadowClone() *MLP {
	s := &MLP{Layers: make([]*Dense, len(m.Layers))}
	for i, l := range m.Layers {
		s.Layers[i] = l.ShadowClone()
	}
	s.params = s.buildParams()
	return s
}

// AddGradsAndReset adds src's gradient accumulators into dst's and zeroes
// src's, in a fixed parameter order.  dst and src must share an
// architecture (typically src is dst.ShadowClone()).
func AddGradsAndReset(dst, src *MLP) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		dg, sg := dp[i].Grad, sp[i].Grad
		for j := range dg {
			dg[j] += sg[j]
			sg[j] = 0
		}
	}
}

// Tape records the traces of one forward pass so the matching backward
// pass can be replayed.  A Tape may be reused across forward passes (and
// across networks of identical layer shapes) via ForwardT; reuse makes
// the forward/backward pair allocation-free in steady state.
type Tape struct {
	traces []*Trace
}

// Forward runs the network on x and returns the output plus a fresh tape.
func (m *MLP) Forward(x []float64) ([]float64, *Tape) {
	tape := &Tape{}
	return m.ForwardT(tape, x), tape
}

// ForwardT runs the network on x, recording traces into tape.  The tape's
// buffers are reused when their shapes match, so repeated calls with the
// same tape do not allocate.  The returned output slice is owned by the
// tape and overwritten by the next ForwardT call.
//lint:hot
func (m *MLP) ForwardT(tape *Tape, x []float64) []float64 {
	if len(tape.traces) != len(m.Layers) {
		tape.traces = make([]*Trace, len(m.Layers))
		for i := range tape.traces {
			tape.traces[i] = &Trace{}
		}
	}
	cur := x
	for i, l := range m.Layers {
		cur = l.forwardInto(tape.traces[i], cur)
	}
	return cur
}

// Backward accumulates parameter gradients for the recorded pass and
// returns the gradient with respect to the network input.
//lint:hot
func (m *MLP) Backward(tape *Tape, dy []float64) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].Backward(tape.traces[i], cur)
	}
	return cur
}

// InputGrad returns dL/dx for the recorded pass without accumulating
// parameter gradients.
//lint:hot
func (m *MLP) InputGrad(tape *Tape, dy []float64) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].InputGrad(tape.traces[i], cur)
	}
	return cur
}

// ZeroGrad clears every layer's gradient accumulators.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// Params returns views of every parameter slice paired with its gradient
// accumulator, in a stable order, for optimizers and allreduce.  The
// result is cached at construction; callers must not append to it.
func (m *MLP) Params() []ParamGrad {
	if m.params != nil {
		return m.params
	}
	return m.buildParams()
}

func (m *MLP) buildParams() []ParamGrad {
	out := make([]ParamGrad, 0, 2*len(m.Layers))
	for _, l := range m.Layers {
		out = append(out, ParamGrad{Param: l.W, Grad: l.GradW}, ParamGrad{Param: l.B, Grad: l.GradB})
	}
	return out
}

// ParamGrad pairs a parameter slice with its gradient accumulator.  Both
// slices alias layer storage, so optimizer updates are visible in place.
type ParamGrad struct {
	Param []float64
	Grad  []float64
}
