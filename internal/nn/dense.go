package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a fully connected layer y = act(W·x + b) with weights stored
// row-major: W[out][in] at index out*In + in.
type Dense struct {
	In, Out int
	W       []float64 // len In*Out
	B       []float64 // len Out
	Act     Activation

	// Gradient accumulators, same shapes as W and B.
	GradW []float64
	GradB []float64
}

// NewDense creates a layer with Glorot/Xavier-uniform initialized weights,
// the TensorFlow default DeePMD-kit inherits.
func NewDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out),
		GradW: make([]float64, in*out), GradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (2*rng.Float64() - 1) * limit
	}
	return d
}

// trace holds per-sample state needed for backprop.
type trace struct {
	input  []float64
	preact []float64
}

// Forward computes the layer output for input x, returning the output and
// a trace for Backward.  The trace keeps Forward re-entrant so a single
// layer can serve many atoms in one configuration.
func (d *Dense) Forward(x []float64) (out []float64, tr *trace) {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense input %d, want %d", len(x), d.In))
	}
	pre := make([]float64, d.Out)
	out = make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		pre[o] = s
		out[o] = d.Act.Apply(s)
	}
	in := make([]float64, len(x))
	copy(in, x)
	return out, &trace{input: in, preact: pre}
}

// Backward accumulates parameter gradients given the upstream gradient
// dL/dy and returns dL/dx.  Call ZeroGrad before a new minibatch.
func (d *Dense) Backward(tr *trace, dy []float64) (dx []float64) {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: dense upstream grad %d, want %d", len(dy), d.Out))
	}
	dx = make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o] * d.Act.Deriv(tr.preact[o])
		d.GradB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GradW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * tr.input[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// InputGrad returns dL/dx without touching the parameter-gradient
// accumulators; used for force evaluation at inference time where only the
// energy gradient with respect to coordinates is needed.
func (d *Dense) InputGrad(tr *trace, dy []float64) (dx []float64) {
	dx = make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o] * d.Act.Deriv(tr.preact[o])
		row := d.W[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			dx[i] += g * row[i]
		}
	}
	return dx
}

// ZeroGrad clears the gradient accumulators.
func (d *Dense) ZeroGrad() {
	for i := range d.GradW {
		d.GradW[i] = 0
	}
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// ParamCount returns the number of trainable parameters.
func (d *Dense) ParamCount() int { return len(d.W) + len(d.B) }

// MLP is a feed-forward stack of dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a network with the given hidden sizes and activation,
// ending in a linear layer of outDim units.  hidden may be empty.  This
// mirrors DeePMD's fitting network: hidden layers share one activation and
// the output is linear.
func NewMLP(rng *rand.Rand, inDim int, hidden []int, outDim int, act Activation) *MLP {
	m := &MLP{}
	prev := inDim
	for _, h := range hidden {
		m.Layers = append(m.Layers, NewDense(rng, prev, h, act))
		prev = h
	}
	m.Layers = append(m.Layers, NewDense(rng, prev, outDim, Identity))
	return m
}

// Tape records the traces of one forward pass so the matching backward
// pass can be replayed.
type Tape struct {
	traces []*trace
}

// Forward runs the network on x and returns the output plus a tape.
func (m *MLP) Forward(x []float64) ([]float64, *Tape) {
	tape := &Tape{traces: make([]*trace, len(m.Layers))}
	cur := x
	for i, l := range m.Layers {
		var tr *trace
		cur, tr = l.Forward(cur)
		tape.traces[i] = tr
	}
	return cur, tape
}

// Backward accumulates parameter gradients for the recorded pass and
// returns the gradient with respect to the network input.
func (m *MLP) Backward(tape *Tape, dy []float64) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].Backward(tape.traces[i], cur)
	}
	return cur
}

// InputGrad returns dL/dx for the recorded pass without accumulating
// parameter gradients.
func (m *MLP) InputGrad(tape *Tape, dy []float64) []float64 {
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		cur = m.Layers[i].InputGrad(tape.traces[i], cur)
	}
	return cur
}

// ZeroGrad clears every layer's gradient accumulators.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// ParamCount returns the total number of trainable parameters.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// Params returns views of every parameter slice paired with its gradient
// accumulator, in a stable order, for optimizers and allreduce.
func (m *MLP) Params() []ParamGrad {
	var out []ParamGrad
	for _, l := range m.Layers {
		out = append(out, ParamGrad{Param: l.W, Grad: l.GradW}, ParamGrad{Param: l.B, Grad: l.GradB})
	}
	return out
}

// ParamGrad pairs a parameter slice with its gradient accumulator.  Both
// slices alias layer storage, so optimizer updates are visible in place.
type ParamGrad struct {
	Param []float64
	Grad  []float64
}
