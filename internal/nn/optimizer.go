package nn

import "math"

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update with the given learning rate, then the
	// caller typically zeroes gradients.
	Step(params []ParamGrad, lr float64)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	Momentum float64
	velocity [][]float64
}

// NewSGD creates an SGD optimizer; momentum 0 gives vanilla SGD.
func NewSGD(momentum float64) *SGD { return &SGD{Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params []ParamGrad, lr float64) {
	if s.Momentum == 0 {
		for _, pg := range params {
			for i := range pg.Param {
				pg.Param[i] -= lr * pg.Grad[i]
			}
		}
		return
	}
	if s.velocity == nil {
		s.velocity = make([][]float64, len(params))
		for i, pg := range params {
			s.velocity[i] = make([]float64, len(pg.Param))
		}
	}
	for i, pg := range params {
		v := s.velocity[i]
		for j := range pg.Param {
			v[j] = s.Momentum*v[j] - lr*pg.Grad[j]
			pg.Param[j] += v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba, 2015), the default DeePMD-kit
// trainer.
type Adam struct {
	Beta1, Beta2, Eps float64
	t                 int
	m, v              [][]float64
}

// NewAdam creates an Adam optimizer with the standard hyperparameters.
func NewAdam() *Adam { return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8} }

// Step implements Optimizer.
func (a *Adam) Step(params []ParamGrad, lr float64) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, pg := range params {
			a.m[i] = make([]float64, len(pg.Param))
			a.v[i] = make([]float64, len(pg.Param))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, pg := range params {
		m, v := a.m[i], a.v[i]
		for j := range pg.Param {
			g := pg.Grad[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			pg.Param[j] -= lr * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ExpDecaySchedule is DeePMD's exponentially decaying learning rate: the
// rate starts at Start and reaches Stop after TotalSteps, decaying as
// lr(t) = Start · (Stop/Start)^(t/TotalSteps).  The loss prefactors in the
// DeePMD loss are functions of lr(t)/Start (see deepmd.Loss).
type ExpDecaySchedule struct {
	Start, Stop float64
	TotalSteps  int
}

// At returns the learning rate at step t (clamped to [0, TotalSteps]).
func (s ExpDecaySchedule) At(t int) float64 {
	if s.TotalSteps <= 0 {
		return s.Start
	}
	if t < 0 {
		t = 0
	}
	if t > s.TotalSteps {
		t = s.TotalSteps
	}
	frac := float64(t) / float64(s.TotalSteps)
	return s.Start * math.Pow(s.Stop/s.Start, frac)
}

// WorkerScale scales a base learning rate for distributed data-parallel
// training with n workers using the named scheme: "linear" multiplies by
// n (the DeePMD default), "sqrt" by √n, and "none" leaves it unchanged
// (§2.2.1).  Unknown schemes fall back to "none".
func WorkerScale(scheme string, lr float64, n int) float64 {
	if n <= 1 {
		return lr
	}
	switch scheme {
	case "linear":
		return lr * float64(n)
	case "sqrt":
		return lr * math.Sqrt(float64(n))
	default:
		return lr
	}
}

// ScaleSchemes lists the worker-scaling options in the paper's decoding
// order: floor(gene) % 3 indexes into this slice (§2.2.2).
var ScaleSchemes = []string{"linear", "sqrt", "none"}
