// Package ddp simulates Horovod-style distributed data-parallel training
// (§2.1.2): several workers each compute gradients on their own shard of a
// minibatch, the gradients are combined with a ring allreduce, and every
// worker applies the same averaged update.  The paper's scale_by_worker
// gene controls how the learning rate is scaled by the worker count in
// this regime; nn.WorkerScale implements the schemes.
package ddp

import (
	"fmt"
	"sync"
)

// AllReduceMean averages the gradient buffers of all workers in place:
// after the call every buffer holds the elementwise mean.  The reduction
// is organized as a ring — each worker owns a contiguous chunk, reduces it
// across peers, then broadcasts — matching how Horovod moves data, though
// here peers are goroutines rather than GPUs.
func AllReduceMean(buffers [][]float64) error {
	if len(buffers) == 0 {
		return nil
	}
	n := len(buffers[0])
	for i, b := range buffers {
		if len(b) != n {
			return fmt.Errorf("ddp: buffer %d length %d != %d", i, len(b), n)
		}
	}
	w := len(buffers)
	if w == 1 {
		return nil
	}

	// Chunk boundaries: worker k owns [starts[k], starts[k+1]).
	starts := make([]int, w+1)
	for k := 0; k <= w; k++ {
		starts[k] = k * n / w
	}

	var wg sync.WaitGroup
	// Reduce-scatter: worker k sums chunk k from all peers into its own
	// buffer.
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := starts[k], starts[k+1]
			own := buffers[k]
			for p := 0; p < w; p++ {
				if p == k {
					continue
				}
				peer := buffers[p]
				for i := lo; i < hi; i++ {
					own[i] += peer[i]
				}
			}
			inv := 1 / float64(w)
			for i := lo; i < hi; i++ {
				own[i] *= inv
			}
		}(k)
	}
	wg.Wait()

	// Allgather: every worker copies each owner's reduced chunk.
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for owner := 0; owner < w; owner++ {
				if owner == k {
					continue
				}
				lo, hi := starts[owner], starts[owner+1]
				copy(buffers[k][lo:hi], buffers[owner][lo:hi])
			}
		}(k)
	}
	wg.Wait()
	return nil
}

// ShardIndices partitions frame indices [0, total) round-robin across
// nWorkers, returning worker w's shard.  Round-robin keeps shards balanced
// for any total.
func ShardIndices(total, nWorkers, w int) []int {
	if nWorkers <= 0 || w < 0 || w >= nWorkers {
		return nil
	}
	var out []int
	for i := w; i < total; i += nWorkers {
		out = append(out, i)
	}
	return out
}

// Group coordinates a fixed set of data-parallel workers.  Each training
// step, every worker contributes a gradient vector; Step averages them and
// hands the mean to the apply function once.  This mirrors the paper's
// 6-GPU-per-node Horovod layout where each GPU trains on a data shard.
type Group struct {
	NWorkers int
	flat     [][]float64
}

// NewGroup creates a worker group.
func NewGroup(nWorkers int) *Group {
	if nWorkers < 1 {
		nWorkers = 1
	}
	return &Group{NWorkers: nWorkers}
}

// Step runs compute(w) on every worker concurrently to produce per-worker
// gradient vectors, allreduces them to the mean, and calls apply with the
// result.
func (g *Group) Step(compute func(w int) []float64, apply func(mean []float64)) error {
	if g.flat == nil {
		g.flat = make([][]float64, g.NWorkers)
	}
	var wg sync.WaitGroup
	for w := 0; w < g.NWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.flat[w] = compute(w)
		}(w)
	}
	wg.Wait()
	if err := AllReduceMean(g.flat); err != nil {
		return err
	}
	apply(g.flat[0])
	return nil
}
