package ddp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllReduceMeanSmall(t *testing.T) {
	buffers := [][]float64{
		{1, 2, 3},
		{3, 4, 5},
		{5, 6, 7},
	}
	if err := AllReduceMean(buffers); err != nil {
		t.Fatalf("AllReduceMean: %v", err)
	}
	want := []float64{3, 4, 5}
	for w, b := range buffers {
		for i := range want {
			if math.Abs(b[i]-want[i]) > 1e-12 {
				t.Errorf("worker %d buffer[%d] = %v, want %v", w, i, b[i], want[i])
			}
		}
	}
}

func TestAllReduceMeanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, workers := range []int{1, 2, 3, 6, 7} {
		for _, n := range []int{1, 5, 100, 1003} {
			buffers := make([][]float64, workers)
			mean := make([]float64, n)
			for w := range buffers {
				buffers[w] = make([]float64, n)
				for i := range buffers[w] {
					buffers[w][i] = rng.NormFloat64()
					mean[i] += buffers[w][i] / float64(workers)
				}
			}
			if err := AllReduceMean(buffers); err != nil {
				t.Fatalf("AllReduceMean(%d, %d): %v", workers, n, err)
			}
			for w := range buffers {
				for i := range mean {
					if math.Abs(buffers[w][i]-mean[i]) > 1e-9 {
						t.Fatalf("workers=%d n=%d: buffer[%d][%d] = %v, want %v",
							workers, n, w, i, buffers[w][i], mean[i])
					}
				}
			}
		}
	}
}

func TestAllReduceLengthMismatch(t *testing.T) {
	if err := AllReduceMean([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("mismatched buffers accepted")
	}
}

func TestAllReduceEmptyAndSingle(t *testing.T) {
	if err := AllReduceMean(nil); err != nil {
		t.Errorf("AllReduceMean(nil): %v", err)
	}
	b := [][]float64{{1, 2, 3}}
	if err := AllReduceMean(b); err != nil {
		t.Errorf("single worker: %v", err)
	}
	if b[0][1] != 2 {
		t.Error("single worker buffer modified")
	}
}

func TestShardIndicesPartition(t *testing.T) {
	total, workers := 17, 6
	seen := map[int]int{}
	for w := 0; w < workers; w++ {
		for _, i := range ShardIndices(total, workers, w) {
			seen[i]++
		}
	}
	if len(seen) != total {
		t.Errorf("shards cover %d of %d indices", len(seen), total)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d covered %d times", i, c)
		}
	}
	// Balance: shard sizes differ by at most 1.
	min, max := total, 0
	for w := 0; w < workers; w++ {
		n := len(ShardIndices(total, workers, w))
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("shard imbalance: %d vs %d", min, max)
	}
}

func TestShardIndicesEdgeCases(t *testing.T) {
	if ShardIndices(10, 0, 0) != nil {
		t.Error("0 workers should return nil")
	}
	if ShardIndices(10, 4, 4) != nil {
		t.Error("out-of-range worker should return nil")
	}
	if got := ShardIndices(2, 6, 5); got != nil {
		t.Errorf("worker beyond data should get empty shard, got %v", got)
	}
}

func TestGroupStepAverages(t *testing.T) {
	g := NewGroup(4)
	var result []float64
	err := g.Step(
		func(w int) []float64 { return []float64{float64(w), 10 * float64(w)} },
		func(mean []float64) { result = append([]float64(nil), mean...) },
	)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(result[0]-1.5) > 1e-12 || math.Abs(result[1]-15) > 1e-12 {
		t.Errorf("mean = %v, want [1.5 15]", result)
	}
}

func TestGroupMinWorkers(t *testing.T) {
	g := NewGroup(0)
	if g.NWorkers != 1 {
		t.Errorf("NewGroup(0).NWorkers = %d, want 1", g.NWorkers)
	}
}

func TestQuickAllReduceIdempotentMean(t *testing.T) {
	// Reducing identical buffers leaves them unchanged.
	f := func(vals []float64) bool {
		for _, v := range vals {
			// Skip values whose 3-way sum overflows; the reduction sums
			// before dividing.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > math.MaxFloat64/4 {
				return true
			}
		}
		buffers := make([][]float64, 3)
		for w := range buffers {
			buffers[w] = append([]float64(nil), vals...)
		}
		if err := AllReduceMean(buffers); err != nil {
			return false
		}
		for w := range buffers {
			for i := range vals {
				if math.Abs(buffers[w][i]-vals[i]) > 1e-9*(1+math.Abs(vals[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
