// Package core is the library facade: one import that exposes the
// reproduction's primary workflow — multiobjective hyperparameter
// optimization of deep-potential training with NSGA-II — without
// requiring callers to know the internal package layout.
//
// The typical user journey:
//
//	cfg := core.DefaultCampaign()          // the paper's setup (Table 1, §2.2)
//	cfg.Runs, cfg.PopSize = 2, 30          // scale to taste
//	campaign, err := core.RunCampaign(ctx, cfg)
//	front := campaign.Result.ParetoFront() // Fig. 2
//
// For generic multiobjective optimization, use Minimize with any
// Evaluator.  For the full per-figure reproductions, see
// internal/experiments and cmd/experiments.
package core

import (
	"context"
	"time"

	"repro/internal/ea"
	"repro/internal/experiments"
	"repro/internal/hpo"
	"repro/internal/nsga2"
	"repro/internal/surrogate"
)

// Re-exported fundamental types.
type (
	// Genome is a real-valued genome vector.
	Genome = ea.Genome
	// Fitness is a vector of minimized objectives.
	Fitness = ea.Fitness
	// Individual is one population member.
	Individual = ea.Individual
	// Population is an ordered individual collection.
	Population = ea.Population
	// Evaluator scores genomes.
	Evaluator = ea.Evaluator
	// EvaluatorFunc adapts a function to Evaluator.
	EvaluatorFunc = ea.EvaluatorFunc
	// Bounds are per-gene intervals.
	Bounds = ea.Bounds
	// Interval is a closed real interval.
	Interval = ea.Interval
	// HParams is a decoded DeePMD hyperparameter set.
	HParams = hpo.HParams
	// Campaign is a finished paper campaign with its surrogate.
	Campaign = experiments.Campaign
	// NSGAConfig configures a single NSGA-II run.
	NSGAConfig = nsga2.Config
	// NSGAResult is a finished NSGA-II run.
	NSGAResult = nsga2.Result
)

// CampaignOptions scales the paper's experiment.
type CampaignOptions = experiments.Options

// DefaultCampaign returns the paper-scale configuration: 5 independent
// runs, population 100, 6 offspring generations (3500 trainings).
func DefaultCampaign() CampaignOptions { return experiments.PaperOptions() }

// RunCampaign executes the paper's hyperparameter-optimization campaign
// against the Summit-training surrogate.
func RunCampaign(ctx context.Context, opts CampaignOptions) (*Campaign, error) {
	return experiments.RunPaperCampaign(ctx, opts)
}

// Minimize runs NSGA-II on an arbitrary multiobjective problem: popSize
// individuals for generations rounds within bounds, mutating with the
// given per-gene σ.  A gentle 0.95 annealing factor suits generic
// problems that need sustained exploration; the paper's campaign itself
// (RunCampaign) uses the more aggressive 0.85 of §2.2.3, appropriate when
// the initial population already clusters near the optimum.
func Minimize(ctx context.Context, ev Evaluator, bounds Bounds, std []float64,
	popSize, generations int, seed int64) (*NSGAResult, error) {
	return nsga2.Run(ctx, nsga2.Config{
		PopSize:      popSize,
		Generations:  generations,
		Bounds:       bounds,
		InitialStd:   std,
		AnnealFactor: 0.95,
		Evaluator:    ev,
		Pool:         ea.PoolConfig{Parallelism: 8, Objectives: 2},
		Seed:         seed,
	})
}

// ParetoFront filters a population to its non-dominated subset.
func ParetoFront(pop Population) Population { return nsga2.NonDominated(pop) }

// Decode maps the seven-gene genome to DeePMD hyperparameters with the
// paper's floor-modulus categorical rule.
func Decode(g Genome) (HParams, error) { return hpo.Decode(g) }

// Encode builds a genome decoding to the given hyperparameters.
func Encode(h HParams) (Genome, error) { return hpo.Encode(h) }

// PaperBounds returns Table 1's initialization ranges.
func PaperBounds() Bounds { return hpo.PaperRepresentation().Bounds }

// PaperStd returns Table 1's mutation standard deviations.
func PaperStd() []float64 { return hpo.PaperRepresentation().Std }

// ChemicallyAccurate applies the paper's §3.2 accuracy thresholds
// (energy < 0.004 eV/atom, force < 0.04 eV/Å) to a fitness.
func ChemicallyAccurate(f Fitness) bool { return hpo.ChemicallyAccurate(f) }

// NewSurrogate builds the Summit-training surrogate evaluator.
func NewSurrogate(seed int64) Evaluator {
	return surrogate.NewEvaluator(surrogate.Config{Seed: seed})
}

// EvalTimeout is the paper's per-training wall-clock limit.
const EvalTimeout = 2 * time.Hour

// SaveCampaign / LoadCampaign persist a campaign's full history (every
// generation of every run) as JSON, so walltime-limited jobs can be
// analyzed offline or resumed.
var (
	SaveCampaignFile = hpo.SaveCampaignFile
	LoadCampaignFile = hpo.LoadCampaignFile
)

// ResumeCampaign continues a saved campaign for additional generations,
// warm-starting each run from its final population with the mutation σ
// resumed at its annealed value.
func ResumeCampaign(ctx context.Context, prev *hpo.CampaignResult, cfg hpo.CampaignConfig, moreGens int) (*hpo.CampaignResult, error) {
	return hpo.ResumeCampaign(ctx, prev, cfg, moreGens)
}

// MinimizeSteadyState is the asynchronous steady-state alternative to
// Minimize: workers never idle waiting for a generation barrier.  The
// evaluation budget replaces the generation count.
func MinimizeSteadyState(ctx context.Context, ev Evaluator, bounds Bounds, std []float64,
	popSize, evaluations int, seed int64) (Population, error) {
	final, _, err := nsga2.RunSteadyState(ctx, nsga2.SteadyConfig{
		PopSize: popSize, Evaluations: evaluations,
		Bounds: bounds, InitialStd: std, AnnealFactor: 0.95,
		Evaluator: ev, Parallelism: 8, Seed: seed,
	})
	return final, err
}

// Hypervolume2D is the exact bi-objective hypervolume indicator.
func Hypervolume2D(pop Population, ref Fitness) float64 {
	return nsga2.Hypervolume2D(pop, ref)
}
