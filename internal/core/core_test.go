package core

import (
	"context"
	"testing"
)

func TestMinimizeOnSimpleProblem(t *testing.T) {
	// min (x², (x-2)²): the Schaffer problem through the facade.
	ev := EvaluatorFunc(func(_ context.Context, g Genome) (Fitness, error) {
		return Fitness{g[0] * g[0], (g[0] - 2) * (g[0] - 2)}, nil
	})
	res, err := Minimize(context.Background(), ev,
		Bounds{{Lo: -10, Hi: 10}}, []float64{0.5}, 30, 25, 1)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	front := ParetoFront(res.Final)
	if len(front) < 5 {
		t.Errorf("front size %d, want a spread of solutions", len(front))
	}
	for _, ind := range front {
		if ind.Genome[0] < -0.6 || ind.Genome[0] > 2.6 {
			t.Errorf("front member x=%v outside Pareto set [0,2]", ind.Genome[0])
		}
	}
}

func TestFacadeDecodeEncode(t *testing.T) {
	h := HParams{StartLR: 0.004, StopLR: 1e-4, RCut: 9, RCutSmth: 3,
		ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "softplus"}
	g, err := Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v != %+v", got, h)
	}
}

func TestFacadeCampaignSmall(t *testing.T) {
	opts := DefaultCampaign()
	opts.Runs, opts.PopSize, opts.Generations = 1, 16, 2
	c, err := RunCampaign(context.Background(), opts)
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if c.Result.TotalEvaluations() != 3*16 {
		t.Errorf("evaluations = %d", c.Result.TotalEvaluations())
	}
}

func TestFacadeConstants(t *testing.T) {
	if len(PaperBounds()) != 7 || len(PaperStd()) != 7 {
		t.Error("paper representation wrong arity")
	}
	if !ChemicallyAccurate(Fitness{0.001, 0.035}) {
		t.Error("accuracy threshold wrong")
	}
	if EvalTimeout.Hours() != 2 {
		t.Error("EvalTimeout != 2h")
	}
	ev := NewSurrogate(1)
	fit, err := ev.Evaluate(context.Background(), mustEncode(t))
	if err != nil {
		t.Fatalf("surrogate: %v", err)
	}
	if len(fit) != 2 {
		t.Errorf("fitness arity %d", len(fit))
	}
}

func mustEncode(t *testing.T) Genome {
	t.Helper()
	g, err := Encode(HParams{StartLR: 0.004, StopLR: 1e-4, RCut: 10, RCutSmth: 3,
		ScaleByWorker: "none", DescActiv: "tanh", FittingActiv: "tanh"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeSteadyState(t *testing.T) {
	ev := EvaluatorFunc(func(_ context.Context, g Genome) (Fitness, error) {
		return Fitness{g[0] * g[0], (g[0] - 2) * (g[0] - 2)}, nil
	})
	final, err := MinimizeSteadyState(context.Background(), ev,
		Bounds{{Lo: -10, Hi: 10}}, []float64{0.5}, 20, 400, 3)
	if err != nil {
		t.Fatalf("MinimizeSteadyState: %v", err)
	}
	if len(final) != 20 {
		t.Fatalf("final size %d", len(final))
	}
	hv := Hypervolume2D(final, Fitness{10, 10})
	if hv < 80 {
		t.Errorf("hypervolume %v, want near-complete coverage of [0,10]² minus front", hv)
	}
}

func TestFacadeSaveResume(t *testing.T) {
	opts := DefaultCampaign()
	opts.Runs, opts.PopSize, opts.Generations = 1, 10, 1
	c, err := RunCampaign(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.json"
	if err := SaveCampaignFile(path, c.Result); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaignFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), loaded, c.Config, 1)
	if err != nil {
		t.Fatalf("ResumeCampaign: %v", err)
	}
	if resumed.TotalEvaluations() != 10*2+10 {
		t.Errorf("evaluations = %d", resumed.TotalEvaluations())
	}
}
