package neighbor

import (
	"math"
	"math/rand"
	"testing"
)

// randCoords places n atoms uniformly in [0, ext)³.
func randCoords(rng *rand.Rand, n int, ext float64) []float64 {
	coord := make([]float64, 3*n)
	for i := range coord {
		coord[i] = rng.Float64() * ext
	}
	return coord
}

func equalCSR(t *testing.T, a, b *List, label string) {
	t.Helper()
	if a.n != b.n {
		t.Fatalf("%s: atom counts differ: %d vs %d", label, a.n, b.n)
	}
	for i := 0; i < a.n; i++ {
		ca, cb := a.Candidates(i), b.Candidates(i)
		if len(ca) != len(cb) {
			t.Fatalf("%s: atom %d candidate counts differ: %v vs %v", label, i, ca, cb)
		}
		for k := range ca {
			if ca[k] != cb[k] {
				t.Fatalf("%s: atom %d candidates differ at %d: %v vs %v", label, i, k, ca, cb)
			}
		}
	}
}

// TestCellMatchesBrute is the property test: on random periodic and open
// configurations, the cell-list build must produce exactly the same
// sorted candidate sets as the quadratic reference scan.
func TestCellMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		n    int
		box  float64 // <= 0 means open boundaries
		rcut float64
		skin float64
	}{
		{n: 8, box: 6, rcut: 2, skin: 0},        // below bruteThreshold
		{n: 40, box: 8, rcut: 2, skin: 0},       // periodic cell grid
		{n: 40, box: 8, rcut: 2, skin: 0.5},     // with skin
		{n: 64, box: 10, rcut: 3, skin: 0.3},    // denser
		{n: 200, box: 14, rcut: 2.5, skin: 0.4}, // many cells
		{n: 40, box: 5, rcut: 2, skin: 0},       // nc < 3 → brute fallback
		{n: 40, box: -1, rcut: 2, skin: 0},      // open boundaries
		{n: 150, box: -1, rcut: 1.5, skin: 0.2}, // open, with skin
		{n: 3, box: 4, rcut: 2, skin: 0},        // tiny
		{n: 0, box: 4, rcut: 2, skin: 0},        // empty
	}
	for _, tc := range cases {
		for rep := 0; rep < 5; rep++ {
			ext := tc.box
			if ext <= 0 {
				ext = 9
			}
			coord := randCoords(rng, tc.n, ext)
			var cell, brute List
			cell.Build(coord, tc.box, tc.rcut, tc.skin)
			brute.BuildBrute(coord, tc.box, tc.rcut, tc.skin)
			equalCSR(t, &cell, &brute, "cell vs brute")
		}
	}
}

// TestCandidatesSorted checks the ascending-order contract that makes a
// cell-list evaluation bit-identical to the brute ascending scan.
func TestCandidatesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coord := randCoords(rng, 100, 12)
	var l List
	l.Build(coord, 12, 3, 0.4)
	for i := 0; i < l.N(); i++ {
		c := l.Candidates(i)
		for k := 1; k < len(c); k++ {
			if c[k-1] >= c[k] {
				t.Fatalf("atom %d candidates not strictly ascending: %v", i, c)
			}
		}
	}
}

// TestSkinCoversDisplacement verifies the skin contract: after every atom
// moves by at most skin/2, each pair within rcut at the new coordinates
// is still a candidate of the list built at the old coordinates.
func TestSkinCoversDisplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		n    = 80
		box  = 10.0
		rcut = 2.5
		skin = 0.6
	)
	for rep := 0; rep < 5; rep++ {
		coord := randCoords(rng, n, box)
		var l List
		l.Build(coord, box, rcut, skin)

		moved := make([]float64, len(coord))
		copy(moved, coord)
		for i := 0; i < n; i++ {
			// Random displacement of length <= skin/2.
			var d [3]float64
			norm := 0.0
			for k := range d {
				d[k] = rng.NormFloat64()
				norm += d[k] * d[k]
			}
			norm = math.Sqrt(norm)
			r := rng.Float64() * skin / 2
			for k := range d {
				moved[3*i+k] += d[k] / norm * r
			}
		}

		isCand := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for _, j := range l.Candidates(i) {
				isCand[[2]int{i, j}] = true
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if minImageDist2(moved, box, i, j) < rcut*rcut && !isCand[[2]int{i, j}] {
					t.Fatalf("rep %d: pair (%d,%d) within rcut after displacement but not a candidate", rep, i, j)
				}
			}
		}
	}
}

// TestBuildReuse checks that rebuilding on the same List (different sizes,
// different boundary modes) gives the same answer as a fresh List.
func TestBuildReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var reused List
	configs := []struct {
		n   int
		box float64
	}{{120, 12}, {40, 8}, {200, -1}, {10, 6}, {64, 9}}
	for _, c := range configs {
		ext := c.box
		if ext <= 0 {
			ext = 10
		}
		coord := randCoords(rng, c.n, ext)
		reused.Build(coord, c.box, 2.5, 0.3)
		var fresh List
		fresh.Build(coord, c.box, 2.5, 0.3)
		equalCSR(t, &reused, &fresh, "reused vs fresh")
	}
}
