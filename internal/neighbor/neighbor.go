// Package neighbor builds linked-cell neighbor candidate lists for the
// descriptor and model hot paths.  A List is constructed once per
// configuration in O(n) (cell binning) instead of the O(n²) per-center
// scan the descriptor used to do, and a skin radius lets one list serve
// several slightly displaced evaluations of the same configuration —
// exactly the pattern of the training loop, where each frame is evaluated
// at x and at x ± h·v̂ for the force-loss directional derivative.
//
// Candidates are a superset of the true neighbors: every pair whose
// minimum-image distance is below RCut+Skin at build time.  Consumers
// re-measure distances against the coordinates they are given, so results
// are exact as long as no atom moves farther than Skin/2 from its build
// position.  Candidate lists are sorted by atom index, which makes a
// cell-list evaluation bit-identical to the brute-force ascending scan it
// replaces.
package neighbor

import (
	"math"
	"slices"
)

// List is a reusable neighbor candidate list in CSR layout: atom i's
// candidates are Idx[Offsets[i]:Offsets[i+1]].  Build may be called
// repeatedly on the same List; internal buffers are reused.
type List struct {
	RCut float64 // hard cutoff the consumer will apply
	Skin float64 // extra candidate radius for displacement tolerance

	n       int
	offsets []int
	idx     []int

	// build scratch, reused across Build calls
	head []int
	next []int
	cell []int
}

// N returns the number of atoms the list was built for.
func (l *List) N() int { return l.n }

// Candidates returns atom i's candidate neighbors in ascending index
// order.  The slice aliases list storage; do not mutate or retain across
// Build calls.
func (l *List) Candidates(i int) []int {
	return l.idx[l.offsets[i]:l.offsets[i+1]]
}

// bruteThreshold: below this many atoms a cell grid costs more than the
// quadratic scan it avoids.
const bruteThreshold = 32

// Build constructs the candidate list for flat atom-major coordinates.
// box > 0 selects a cubic periodic cell with minimum-image distances (the
// same convention the descriptor applies); box <= 0 is open boundaries.
func (l *List) Build(coord []float64, box float64, rcut, skin float64) {
	if skin < 0 {
		skin = 0
	}
	l.RCut, l.Skin = rcut, skin
	l.n = len(coord) / 3
	l.offsets = growInts(l.offsets, l.n+1)
	l.idx = l.idx[:0]

	reach := rcut + skin
	if l.n < bruteThreshold {
		l.buildBruteInto(coord, box, reach)
		return
	}
	if box > 0 {
		nc := int(box / reach)
		if nc < 3 {
			// Cells would wrap onto themselves; the quadratic scan is
			// exact and the box is small anyway.
			l.buildBruteInto(coord, box, reach)
			return
		}
		l.buildPeriodic(coord, box, reach, nc)
		return
	}
	l.buildOpen(coord, reach)
}

// BuildBrute constructs the same candidate list with the O(n²) scan,
// bypassing the cell grid.  It exists so tests and verification can
// compare the two strategies on identical inputs.
func (l *List) BuildBrute(coord []float64, box float64, rcut, skin float64) {
	if skin < 0 {
		skin = 0
	}
	l.RCut, l.Skin = rcut, skin
	l.n = len(coord) / 3
	l.offsets = growInts(l.offsets, l.n+1)
	l.idx = l.idx[:0]
	l.buildBruteInto(coord, box, rcut+skin)
}

func (l *List) buildBruteInto(coord []float64, box float64, reach float64) {
	reach2 := reach * reach
	for i := 0; i < l.n; i++ {
		l.offsets[i] = len(l.idx)
		for j := 0; j < l.n; j++ {
			if j == i {
				continue
			}
			if minImageDist2(coord, box, i, j) < reach2 {
				l.idx = append(l.idx, j)
			}
		}
	}
	l.offsets[l.n] = len(l.idx)
}

func (l *List) buildPeriodic(coord []float64, box, reach float64, nc int) {
	cs := box / float64(nc) // >= reach by construction
	l.head = growInts(l.head, nc*nc*nc)
	for c := range l.head {
		l.head[c] = -1
	}
	l.next = growInts(l.next, l.n)
	l.cell = growInts(l.cell, 3*l.n)

	// Bin atoms by wrapped position.  Linked lists are filled in reverse
	// so each cell's chain comes out in ascending atom order (not that
	// order matters: candidates are sorted below).
	for i := l.n - 1; i >= 0; i-- {
		var c [3]int
		for k := 0; k < 3; k++ {
			w := coord[3*i+k] - box*math.Floor(coord[3*i+k]/box)
			ck := int(w / cs)
			if ck >= nc { // w == box after floating-point roundoff
				ck = nc - 1
			}
			c[k] = ck
			l.cell[3*i+k] = ck
		}
		idx := (c[0]*nc+c[1])*nc + c[2]
		l.next[i] = l.head[idx]
		l.head[idx] = i
	}

	reach2 := reach * reach
	for i := 0; i < l.n; i++ {
		l.offsets[i] = len(l.idx)
		start := len(l.idx)
		ci := l.cell[3*i : 3*i+3]
		for dx := -1; dx <= 1; dx++ {
			cx := wrapCell(ci[0]+dx, nc)
			for dy := -1; dy <= 1; dy++ {
				cy := wrapCell(ci[1]+dy, nc)
				for dz := -1; dz <= 1; dz++ {
					cz := wrapCell(ci[2]+dz, nc)
					for j := l.head[(cx*nc+cy)*nc+cz]; j >= 0; j = l.next[j] {
						if j == i {
							continue
						}
						if minImageDist2(coord, box, i, j) < reach2 {
							l.idx = append(l.idx, j)
						}
					}
				}
			}
		}
		slices.Sort(l.idx[start:])
	}
	l.offsets[l.n] = len(l.idx)
}

func (l *List) buildOpen(coord []float64, reach float64) {
	var lo, hi [3]float64
	for k := 0; k < 3; k++ {
		lo[k], hi[k] = coord[k], coord[k]
	}
	for i := 1; i < l.n; i++ {
		for k := 0; k < 3; k++ {
			v := coord[3*i+k]
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	var nc [3]int
	var cs [3]float64
	cells := 1
	for k := 0; k < 3; k++ {
		ext := hi[k] - lo[k]
		nc[k] = int(ext / reach)
		if nc[k] < 1 {
			nc[k] = 1
		}
		cs[k] = ext / float64(nc[k])
		if cs[k] <= 0 {
			cs[k] = 1 // degenerate axis: everything lands in cell 0
		}
		cells *= nc[k]
	}
	l.head = growInts(l.head, cells)
	for c := range l.head {
		l.head[c] = -1
	}
	l.next = growInts(l.next, l.n)
	l.cell = growInts(l.cell, 3*l.n)
	for i := l.n - 1; i >= 0; i-- {
		var c [3]int
		for k := 0; k < 3; k++ {
			ck := int((coord[3*i+k] - lo[k]) / cs[k])
			if ck >= nc[k] {
				ck = nc[k] - 1
			}
			c[k] = ck
			l.cell[3*i+k] = ck
		}
		idx := (c[0]*nc[1]+c[1])*nc[2] + c[2]
		l.next[i] = l.head[idx]
		l.head[idx] = i
	}

	reach2 := reach * reach
	for i := 0; i < l.n; i++ {
		l.offsets[i] = len(l.idx)
		start := len(l.idx)
		ci := l.cell[3*i : 3*i+3]
		for cx := max(ci[0]-1, 0); cx <= min(ci[0]+1, nc[0]-1); cx++ {
			for cy := max(ci[1]-1, 0); cy <= min(ci[1]+1, nc[1]-1); cy++ {
				for cz := max(ci[2]-1, 0); cz <= min(ci[2]+1, nc[2]-1); cz++ {
					for j := l.head[(cx*nc[1]+cy)*nc[2]+cz]; j >= 0; j = l.next[j] {
						if j == i {
							continue
						}
						if dist2(coord, i, j) < reach2 {
							l.idx = append(l.idx, j)
						}
					}
				}
			}
		}
		slices.Sort(l.idx[start:])
	}
	l.offsets[l.n] = len(l.idx)
}

// minImageDist2 returns the squared minimum-image distance between atoms
// i and j, using the identical rounding convention as the descriptor so
// candidate membership is consistent with what consumers re-measure.
func minImageDist2(coord []float64, box float64, i, j int) float64 {
	r2 := 0.0
	for k := 0; k < 3; k++ {
		dk := coord[3*j+k] - coord[3*i+k]
		if box > 0 {
			dk -= box * math.Round(dk/box)
		}
		r2 += dk * dk
	}
	return r2
}

func dist2(coord []float64, i, j int) float64 {
	r2 := 0.0
	for k := 0; k < 3; k++ {
		dk := coord[3*j+k] - coord[3*i+k]
		r2 += dk * dk
	}
	return r2
}

func wrapCell(c, nc int) int {
	if c < 0 {
		return c + nc
	}
	if c >= nc {
		return c - nc
	}
	return c
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
