package neighbor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// BenchmarkBuild compares the cell-list build against the quadratic scan
// at growing atom counts (fixed density, so the box scales with n).
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(1))
		// ~0.05 atoms/Å³, water-ish number density.
		box := math.Cbrt(float64(n) / 0.05)
		coord := randCoords(rng, n, box)
		b.Run(fmt.Sprintf("cell/n=%d", n), func(b *testing.B) {
			var l List
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Build(coord, box, 6, 0.5)
			}
		})
		b.Run(fmt.Sprintf("brute/n=%d", n), func(b *testing.B) {
			var l List
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.BuildBrute(coord, box, 6, 0.5)
			}
		})
	}
}
