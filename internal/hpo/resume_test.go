package hpo

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

func TestResumeCampaignContinuesRuns(t *testing.T) {
	cfg := CampaignConfig{
		Runs: 2, PopSize: 15, Generations: 2,
		Evaluator:   persistEval,
		Parallelism: 4, AnnealFactor: 0.85, BaseSeed: 21,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), first, cfg, 3)
	if err != nil {
		t.Fatalf("ResumeCampaign: %v", err)
	}
	if len(resumed.Runs) != 2 {
		t.Fatalf("resumed %d runs", len(resumed.Runs))
	}
	for r, run := range resumed.Runs {
		if len(run.Generations) != 3+3 {
			t.Errorf("run %d has %d generation records, want 6", r, len(run.Generations))
		}
		for g, rec := range run.Generations {
			if rec.Gen != g {
				t.Errorf("run %d record %d has Gen %d (indices must continue)", r, g, rec.Gen)
			}
		}
		if len(run.Final) != 15 {
			t.Errorf("run %d final population %d", r, len(run.Final))
		}
	}
	// Resumption adds evaluations: 2 runs × 3 gens × 15.
	want := first.TotalEvaluations() + 2*3*15
	if got := resumed.TotalEvaluations(); got != want {
		t.Errorf("TotalEvaluations = %d, want %d", got, want)
	}
}

func TestResumeImprovesOrMaintainsFrontier(t *testing.T) {
	cfg := CampaignConfig{
		Runs: 1, PopSize: 20, Generations: 2,
		Evaluator:   persistEval,
		Parallelism: 4, AnnealFactor: 0.9, BaseSeed: 5,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), first, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// persistEval's objectives live in (0, 0.01] × (0, 6).
	ref := ea.Fitness{0.02, 7}
	hvFirst := nsga2.Hypervolume2D(first.LastGenerations(), ref)
	hvResumed := nsga2.Hypervolume2D(resumed.LastGenerations(), ref)
	if hvResumed < hvFirst-1e-12 {
		t.Errorf("resume degraded frontier: %v -> %v (elitist selection forbids this)", hvFirst, hvResumed)
	}
}

func TestResumeRoundTripThroughPersistence(t *testing.T) {
	// The real workflow: job 1 runs, saves; job 2 loads, resumes.
	cfg := CampaignConfig{
		Runs: 1, PopSize: 10, Generations: 1,
		Evaluator: persistEval, Parallelism: 2, BaseSeed: 9,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCampaign(&buf, first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), loaded, cfg, 2)
	if err != nil {
		t.Fatalf("resume after load: %v", err)
	}
	if resumed.TotalEvaluations() != 10*2+10*2 {
		t.Errorf("evaluations = %d", resumed.TotalEvaluations())
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := CampaignConfig{Runs: 1, PopSize: 10, Evaluator: persistEval, BaseSeed: 1}
	if _, err := ResumeCampaign(context.Background(), nil, cfg, 2); err == nil {
		t.Error("nil campaign accepted")
	}
	first, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 1, PopSize: 10, Generations: 1, Evaluator: persistEval, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCampaign(context.Background(), first, cfg, 0); err == nil {
		t.Error("moreGens=0 accepted")
	}
	badCfg := cfg
	badCfg.PopSize = 99
	if _, err := ResumeCampaign(context.Background(), first, badCfg, 1); err == nil {
		t.Error("population size mismatch accepted")
	}
}
