package hpo

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

func TestResumeCampaignContinuesRuns(t *testing.T) {
	cfg := CampaignConfig{
		Runs: 2, PopSize: 15, Generations: 2,
		Evaluator:   persistEval,
		Parallelism: 4, AnnealFactor: 0.85, BaseSeed: 21,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), first, cfg, 3)
	if err != nil {
		t.Fatalf("ResumeCampaign: %v", err)
	}
	if len(resumed.Runs) != 2 {
		t.Fatalf("resumed %d runs", len(resumed.Runs))
	}
	for r, run := range resumed.Runs {
		if len(run.Generations) != 3+3 {
			t.Errorf("run %d has %d generation records, want 6", r, len(run.Generations))
		}
		for g, rec := range run.Generations {
			if rec.Gen != g {
				t.Errorf("run %d record %d has Gen %d (indices must continue)", r, g, rec.Gen)
			}
		}
		if len(run.Final) != 15 {
			t.Errorf("run %d final population %d", r, len(run.Final))
		}
	}
	// Resumption adds evaluations: 2 runs × 3 gens × 15.
	want := first.TotalEvaluations() + 2*3*15
	if got := resumed.TotalEvaluations(); got != want {
		t.Errorf("TotalEvaluations = %d, want %d", got, want)
	}
}

func TestResumeImprovesOrMaintainsFrontier(t *testing.T) {
	cfg := CampaignConfig{
		Runs: 1, PopSize: 20, Generations: 2,
		Evaluator:   persistEval,
		Parallelism: 4, AnnealFactor: 0.9, BaseSeed: 5,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), first, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// persistEval's objectives live in (0, 0.01] × (0, 6).
	ref := ea.Fitness{0.02, 7}
	hvFirst := nsga2.Hypervolume2D(first.LastGenerations(), ref)
	hvResumed := nsga2.Hypervolume2D(resumed.LastGenerations(), ref)
	if hvResumed < hvFirst-1e-12 {
		t.Errorf("resume degraded frontier: %v -> %v (elitist selection forbids this)", hvFirst, hvResumed)
	}
}

func TestResumeRoundTripThroughPersistence(t *testing.T) {
	// The real workflow: job 1 runs, saves; job 2 loads, resumes.
	cfg := CampaignConfig{
		Runs: 1, PopSize: 10, Generations: 1,
		Evaluator: persistEval, Parallelism: 2, BaseSeed: 9,
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCampaign(&buf, first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCampaign(context.Background(), loaded, cfg, 2)
	if err != nil {
		t.Fatalf("resume after load: %v", err)
	}
	if resumed.TotalEvaluations() != 10*2+10*2 {
		t.Errorf("evaluations = %d", resumed.TotalEvaluations())
	}
}

// TestResumeChainedLegsDecorrelated is the regression test for the
// resume-seed bug: the leg seed used to be BaseSeed + runIdx + 7919,
// identical for every resume leg of the same run, so chaining two
// resumes replayed the same mutation RNG stream.
//
// Construction: PopSize 1 with an evaluator that fails every genome
// except the initial individuals.  Offspring then always carry MAXINT
// fitness and lose environmental selection, so each leg mutates exactly
// the same single parent — if leg 2 drew the same RNG stream as leg 1
// (AnnealFactor 1 keeps σ constant across legs), its offspring would be
// bitwise identical to leg 1's.
func TestResumeChainedLegsDecorrelated(t *testing.T) {
	allowed := map[string]bool{}
	eval := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		if allowed[ea.GenomeKey(g)] {
			return ea.Fitness{1, 1}, nil
		}
		return nil, errors.New("offspring rejected by construction")
	})
	cfg := CampaignConfig{
		Runs: 2, PopSize: 1, Generations: 0,
		Evaluator: eval, Parallelism: 1, AnnealFactor: 1, BaseSeed: 404,
	}
	// Pre-register the initial genomes: generation 0 is drawn from
	// rand.New(BaseSeed+runIdx) before any evaluation, so replicate that
	// draw to know which genomes to admit.
	rep := PaperRepresentation()
	for run := 0; run < cfg.Runs; run++ {
		rng := newSeededRand(cfg.BaseSeed + int64(run))
		pop := ea.RandomPopulation(rng, rep.Bounds, cfg.PopSize, 0)
		for _, ind := range pop {
			allowed[ea.GenomeKey(ind.Genome)] = true
		}
	}
	first, err := RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	leg1, err := ResumeCampaign(context.Background(), first, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	leg1b, err := ResumeCampaign(context.Background(), first, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	leg2, err := ResumeCampaign(context.Background(), leg1, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < cfg.Runs; run++ {
		// Survivor invariant the construction relies on: failures never
		// displace the evaluated parent.
		if got := leg2.Runs[run].Final[0].Genome; !sameGenome(got, first.Runs[run].Final[0].Genome) {
			t.Fatalf("run %d: parent displaced by failed offspring", run)
		}
		off1 := leg1.Runs[run].Generations[1].Evaluated[0].Genome
		off1b := leg1b.Runs[run].Generations[1].Evaluated[0].Genome
		off2 := leg2.Runs[run].Generations[2].Evaluated[0].Genome
		// Replaying the same leg must stay deterministic...
		if !sameGenome(off1, off1b) {
			t.Errorf("run %d: replayed leg 1 is not deterministic", run)
		}
		// ...but the next leg must draw fresh noise.
		if sameGenome(off1, off2) {
			t.Errorf("run %d: leg 2 offspring identical to leg 1 — chained resumes replay the same RNG stream", run)
		}
	}
}

func sameGenome(a, b ea.Genome) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floateq bit-identity is exactly what this regression test measures
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestResumeSeedDistinct pins the derivation: seeds must differ across
// legs (gensDone), across runs, and must not collide with any first-leg
// seed (BaseSeed + runIdx) of a plausible campaign width.
func TestResumeSeedDistinct(t *testing.T) {
	const base = 2023
	seen := map[int64]string{}
	for run := 0; run < 64; run++ {
		key := fmt.Sprintf("first-leg run %d", run)
		seen[base+int64(run)] = key
	}
	for run := 0; run < 8; run++ {
		for gens := 0; gens < 32; gens++ {
			s := ResumeSeed(base, run, gens)
			key := fmt.Sprintf("resume run %d gensDone %d", run, gens)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %q and %q both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := CampaignConfig{Runs: 1, PopSize: 10, Evaluator: persistEval, BaseSeed: 1}
	if _, err := ResumeCampaign(context.Background(), nil, cfg, 2); err == nil {
		t.Error("nil campaign accepted")
	}
	first, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 1, PopSize: 10, Generations: 1, Evaluator: persistEval, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCampaign(context.Background(), first, cfg, 0); err == nil {
		t.Error("moreGens=0 accepted")
	}
	badCfg := cfg
	badCfg.PopSize = 99
	if _, err := ResumeCampaign(context.Background(), first, badCfg, 1); err == nil {
		t.Error("population size mismatch accepted")
	}
}
