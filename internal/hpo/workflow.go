package hpo

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/deepmd"
	"repro/internal/ea"
	"repro/internal/uuid"
)

// Trainer runs one DeePMD training given a rendered input.json path and a
// run directory, producing lcurve.out in that directory.  It is the slot
// the paper fills with a subprocess call to `dp` (§2.2.4 item 4a); here it
// is filled by the in-process deepmd trainer or, in tests, by fakes.
type Trainer interface {
	Train(ctx context.Context, inputPath, runDir string) error
}

// TrainerFunc adapts a function to the Trainer interface.
type TrainerFunc func(ctx context.Context, inputPath, runDir string) error

// Train implements Trainer.
func (f TrainerFunc) Train(ctx context.Context, inputPath, runDir string) error {
	return f(ctx, inputPath, runDir)
}

// WorkflowEvaluator is the paper's §2.2.4 evaluation workflow as an
// ea.Evaluator:
//
//  1. decode the seven-gene genome (floor-modulus for categoricals),
//  2. create a UUID-named run directory,
//  3. substitute the decoded values into the JSON input template and
//     write input.json there,
//  4. run the trainer and read the last rmse_e_val / rmse_f_val from
//     lcurve.out as the two-element fitness.
//
// Any error propagates out and the EA layer assigns MAXINT fitness.
type WorkflowEvaluator struct {
	// WorkDir is where per-individual UUID directories are created.
	WorkDir string
	// Template is the input.json template ("" = DefaultInputTemplate).
	Template string
	// Steps, DispFreq and Seed fill the non-tuned template slots.
	Steps    int
	DispFreq int
	Seed     int64
	// TrainDir and ValDir are the dataset paths substituted into the
	// template.
	TrainDir, ValDir string
	// Trainer runs the training.
	Trainer Trainer
	// Keep, if false, removes each run directory after the fitness has
	// been extracted.
	Keep bool
}

// Evaluate implements ea.Evaluator.
func (w *WorkflowEvaluator) Evaluate(ctx context.Context, g ea.Genome) (ea.Fitness, error) {
	h, err := Decode(g)
	if err != nil {
		return nil, err
	}
	runDir := filepath.Join(w.WorkDir, uuid.New().String())
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return nil, fmt.Errorf("hpo: creating run dir: %w", err)
	}
	if !w.Keep {
		defer os.RemoveAll(runDir)
	}
	vars := TemplateVars(h, w.Steps, w.DispFreq, w.Seed, w.TrainDir, w.ValDir)
	inputPath, err := WriteInput(runDir, w.Template, vars)
	if err != nil {
		return nil, err
	}
	if err := w.Trainer.Train(ctx, inputPath, runDir); err != nil {
		return nil, fmt.Errorf("hpo: training failed: %w", err)
	}
	rmseE, rmseF, err := deepmd.FinalLosses(filepath.Join(runDir, "lcurve.out"))
	if err != nil {
		return nil, err
	}
	// Fitness order is (energy loss, force loss), matching the paper's
	// two-element Numpy fitness array.
	return ea.Fitness{rmseE, rmseF}, nil
}

// RealTrainer trains an actual deepmd model in-process: the substitution
// for invoking the `dp` executable.  Frame sources are opened once and
// shared across evaluations; they may be in-memory datasets or
// out-of-core stream stores — training is bit-identical either way.
type RealTrainer struct {
	Train deepmd.FrameSource
	Val   deepmd.FrameSource
	// Workers is the simulated data-parallel width (6 in the paper).
	Workers int
	// StepsOverride, if positive, truncates numb_steps (reduced-scale
	// campaigns).
	StepsOverride int
	// ValFrames caps validation frames per lcurve evaluation.
	ValFrames int
	// Fast selects the cross-frame fused gradient path (see
	// deepmd.TrainConfig.Fast); learning curves then follow a relaxed
	// reduction order instead of the paper's bit-exact one.
	Fast bool
}

// TrainRun implements the Trainer interface.
func (rt *RealTrainer) TrainRun(ctx context.Context, inputPath, runDir string) error {
	in, err := deepmd.ParseInputFile(inputPath)
	if err != nil {
		return err
	}
	if err := in.Validate(); err != nil {
		return err
	}
	mc, err := in.ModelConfig()
	if err != nil {
		return err
	}
	// Keep the descriptor's neighbour normalization consistent with the
	// dataset's typical coordination at this cutoff.
	mc.Descriptor.NeighborNorm = estimateNeighbors(rt.Train, mc.Descriptor.RCut)

	workers := rt.Workers
	if workers <= 0 {
		workers = 6
	}
	tc := in.TrainConfig(workers)
	if rt.StepsOverride > 0 && tc.Steps > rt.StepsOverride {
		tc.Steps = rt.StepsOverride
	}
	tc.ValFrames = rt.ValFrames
	tc.Fast = rt.Fast

	rngSeed := tc.Seed
	model, err := deepmd.NewModel(newSeededRand(rngSeed), mc)
	if err != nil {
		return err
	}
	lcurve, err := os.Create(filepath.Join(runDir, "lcurve.out"))
	if err != nil {
		return err
	}
	defer lcurve.Close()
	_, err = deepmd.TrainSource(ctx, model, rt.Train, rt.Val, tc, lcurve)
	return err
}

// estimateNeighbors returns the average neighbour count within rcut for
// the first frame of the source, used as the descriptor normalization.
func estimateNeighbors(src deepmd.FrameSource, rcut float64) float64 {
	if src == nil || src.Len() == 0 {
		return 16
	}
	f, err := src.Frame(0)
	if err != nil {
		return 16
	}
	n := len(src.AtomTypes())
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r2 := 0.0
			for k := 0; k < 3; k++ {
				dk := f.Coord[3*j+k] - f.Coord[3*i+k]
				if f.Box > 0 {
					for dk > f.Box/2 {
						dk -= f.Box
					}
					for dk < -f.Box/2 {
						dk += f.Box
					}
				}
				r2 += dk * dk
			}
			if r2 < rcut*rcut {
				count++
			}
		}
	}
	avg := float64(count) / float64(n)
	if avg < 1 {
		avg = 1
	}
	return avg
}
