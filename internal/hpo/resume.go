package hpo

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// ResumeCampaign continues a finished (or walltime-killed) campaign for
// moreGens additional generations per run: the operational pattern behind
// the paper's 12-hour Summit batch jobs (§2.2.5), where long campaigns
// must span multiple submissions.  Each run warm-starts from its final
// surviving population, and the mutation σ resumes from its annealed
// value (σ₀ · anneal^gensAlreadyRun).  The returned result contains the
// original generations followed by the new ones with continued indices.
func ResumeCampaign(ctx context.Context, prev *CampaignResult, cfg CampaignConfig, moreGens int) (*CampaignResult, error) {
	if prev == nil || len(prev.Runs) == 0 {
		return nil, fmt.Errorf("hpo: nothing to resume")
	}
	if moreGens <= 0 {
		return nil, fmt.Errorf("hpo: moreGens must be positive")
	}
	rep := cfg.Representation
	if rep.Bounds == nil {
		rep = PaperRepresentation()
	}
	anneal := cfg.AnnealFactor
	if anneal == 0 {
		anneal = 0.85
	}

	out := &CampaignResult{}
	for runIdx, run := range prev.Runs {
		if len(run.Final) == 0 {
			return nil, fmt.Errorf("hpo: run %d has no final population", runIdx)
		}
		gensDone := len(run.Generations) - 1
		if gensDone < 0 {
			gensDone = 0
		}
		std := make([]float64, len(rep.Std))
		decay := math.Pow(anneal, float64(gensDone))
		for i, s := range rep.Std {
			std[i] = s * decay
		}
		popSize := cfg.PopSize
		if popSize == 0 {
			popSize = len(run.Final)
		}
		if popSize != len(run.Final) {
			return nil, fmt.Errorf("hpo: run %d final population %d != PopSize %d",
				runIdx, len(run.Final), popSize)
		}
		res, err := nsga2.Run(ctx, nsga2.Config{
			PopSize:      popSize,
			Generations:  moreGens,
			Bounds:       rep.Bounds,
			InitialStd:   std,
			AnnealFactor: anneal,
			Evaluator:    cfg.Evaluator,
			Pool:         poolFromConfig(cfg),
			Seed:         cfg.BaseSeed + int64(runIdx) + 7919, // decorrelate from the first leg
			Initial:      run.Final,
		})
		if err != nil {
			return out, fmt.Errorf("hpo: resuming run %d: %w", runIdx, err)
		}
		// Stitch: original generations, then the new offspring generations
		// (the warm-start "generation 0" duplicates the previous final
		// population and is dropped).
		combined := &nsga2.Result{}
		combined.Generations = append(combined.Generations, run.Generations...)
		for _, rec := range res.Generations[1:] {
			rec.Gen = gensDone + rec.Gen
			combined.Generations = append(combined.Generations, rec)
		}
		combined.Final = res.Final
		out.Runs = append(out.Runs, combined)
	}
	return out, nil
}

func poolFromConfig(cfg CampaignConfig) ea.PoolConfig {
	return ea.PoolConfig{
		Parallelism: cfg.Parallelism,
		Timeout:     cfg.EvalTimeout,
		Objectives:  2,
	}
}
