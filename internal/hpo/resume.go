package hpo

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// ResumeCampaign continues a finished (or walltime-killed) campaign for
// moreGens additional generations per run: the operational pattern behind
// the paper's 12-hour Summit batch jobs (§2.2.5), where long campaigns
// must span multiple submissions.  Each run warm-starts from its final
// surviving population, and the mutation σ resumes from its annealed
// value (σ₀ · anneal^gensAlreadyRun).  The returned result contains the
// original generations followed by the new ones with continued indices.
func ResumeCampaign(ctx context.Context, prev *CampaignResult, cfg CampaignConfig, moreGens int) (*CampaignResult, error) {
	if prev == nil || len(prev.Runs) == 0 {
		return nil, fmt.Errorf("hpo: nothing to resume")
	}
	if moreGens <= 0 {
		return nil, fmt.Errorf("hpo: moreGens must be positive")
	}
	rep := cfg.Representation
	if rep.Bounds == nil {
		rep = PaperRepresentation()
	}
	anneal := cfg.AnnealFactor
	if anneal == 0 {
		anneal = 0.85
	}

	out := &CampaignResult{}
	for runIdx, run := range prev.Runs {
		if len(run.Final) == 0 {
			return nil, fmt.Errorf("hpo: run %d has no final population", runIdx)
		}
		gensDone := len(run.Generations) - 1
		if gensDone < 0 {
			gensDone = 0
		}
		std := make([]float64, len(rep.Std))
		decay := math.Pow(anneal, float64(gensDone))
		for i, s := range rep.Std {
			std[i] = s * decay
		}
		popSize := cfg.PopSize
		if popSize == 0 {
			popSize = len(run.Final)
		}
		if popSize != len(run.Final) {
			return nil, fmt.Errorf("hpo: run %d final population %d != PopSize %d",
				runIdx, len(run.Final), popSize)
		}
		res, err := nsga2.Run(ctx, nsga2.Config{
			PopSize:      popSize,
			Generations:  moreGens,
			Bounds:       rep.Bounds,
			InitialStd:   std,
			AnnealFactor: anneal,
			Evaluator:    cfg.Evaluator,
			Pool:         poolFromConfig(cfg),
			Seed:         ResumeSeed(cfg.BaseSeed, runIdx, gensDone),
			Initial:      run.Final,
		})
		if err != nil {
			return out, fmt.Errorf("hpo: resuming run %d: %w", runIdx, err)
		}
		// Stitch: original generations, then the new offspring generations
		// (the warm-start "generation 0" duplicates the previous final
		// population and is dropped).
		combined := &nsga2.Result{}
		combined.Generations = append(combined.Generations, run.Generations...)
		for _, rec := range res.Generations[1:] {
			rec.Gen = gensDone + rec.Gen
			combined.Generations = append(combined.Generations, rec)
		}
		combined.Final = res.Final
		out.Runs = append(out.Runs, combined)
	}
	return out, nil
}

// ResumeSeed derives the mutation-RNG seed for one resume leg from the
// campaign base seed, the run index and the number of generations the run
// has already completed.  Folding gensDone in is what makes chained legs
// statistically independent: a seed that depends only on (BaseSeed,
// runIdx) — as the original `BaseSeed + runIdx + 7919` did — hands every
// resume leg of the same run the identical RNG stream, so a campaign
// chained across three 12-hour jobs mutates with the same noise in legs
// two and three that it used in leg one.  The splitmix64 finalizer chain
// also removes the additive-offset collisions the fixed `+7919` had with
// first-leg seeds (`BaseSeed + runIdx'`) in wide campaigns.
func ResumeSeed(base int64, runIdx, gensDone int) int64 {
	z := splitmix64(uint64(base) + 0x9e3779b97f4a7c15)
	z = splitmix64(z + uint64(runIdx))
	z = splitmix64(z + uint64(gensDone))
	return int64(z)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix, so
// distinct (base, runIdx, gensDone) triples cannot collide by simple
// integer offsets.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func poolFromConfig(cfg CampaignConfig) ea.PoolConfig {
	return ea.PoolConfig{
		Parallelism: cfg.Parallelism,
		Timeout:     cfg.EvalTimeout,
		Objectives:  2,
	}
}
