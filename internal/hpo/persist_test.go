package hpo

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// persistEval is a cheap stand-in evaluator with occasional failures
// (internal/surrogate cannot be imported here: it imports hpo).
var persistEval = ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
	h, err := Decode(g)
	if err != nil {
		return nil, err
	}
	if math.Mod(h.RCut*1e6, 17) < 1 {
		return nil, errors.New("sporadic crash")
	}
	return ea.Fitness{h.StartLR, 12 - h.RCut}, nil
})

func smallCampaign(t *testing.T) *CampaignResult {
	t.Helper()
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 2, PopSize: 15, Generations: 3,
		Evaluator:   persistEval,
		Parallelism: 4, AnnealFactor: 0.85, BaseSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignSaveLoadRoundTrip(t *testing.T) {
	orig := smallCampaign(t)
	var buf bytes.Buffer
	if err := SaveCampaign(&buf, orig); err != nil {
		t.Fatalf("SaveCampaign: %v", err)
	}
	got, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatalf("LoadCampaign: %v", err)
	}
	if len(got.Runs) != len(orig.Runs) {
		t.Fatalf("runs %d != %d", len(got.Runs), len(orig.Runs))
	}
	if got.TotalEvaluations() != orig.TotalEvaluations() {
		t.Errorf("evaluations %d != %d", got.TotalEvaluations(), orig.TotalEvaluations())
	}
	if got.TotalFailures() != orig.TotalFailures() {
		t.Errorf("failures %d != %d", got.TotalFailures(), orig.TotalFailures())
	}
	// Spot-check an individual's full state.
	oi := orig.Runs[0].Generations[1].Evaluated[3]
	gi := got.Runs[0].Generations[1].Evaluated[3]
	if oi.ID != gi.ID || oi.Birth != gi.Birth {
		t.Error("identity fields lost")
	}
	for k := range oi.Genome {
		if oi.Genome[k] != gi.Genome[k] {
			t.Fatal("genome lost precision")
		}
	}
	for k := range oi.Fitness {
		if oi.Fitness[k] != gi.Fitness[k] {
			t.Fatal("fitness lost precision (including MAXINT failures)")
		}
	}
	// Frontier computed from the loaded campaign matches the original.
	of := orig.ParetoFront()
	gf := got.ParetoFront()
	if len(of) != len(gf) {
		t.Errorf("frontier size %d != %d after reload", len(gf), len(of))
	}
	// Survivors alias evaluated individuals (same object identity).
	lastGen := got.Runs[0].Generations[len(got.Runs[0].Generations)-1]
	found := false
	for _, s := range lastGen.Survivors {
		for _, e := range lastGen.Evaluated {
			if s == e {
				found = true
			}
		}
	}
	if !found {
		t.Error("no survivor aliases a last-generation evaluation")
	}
}

func TestCampaignSaveLoadFile(t *testing.T) {
	orig := smallCampaign(t)
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := SaveCampaignFile(path, orig); err != nil {
		t.Fatalf("SaveCampaignFile: %v", err)
	}
	got, err := LoadCampaignFile(path)
	if err != nil {
		t.Fatalf("LoadCampaignFile: %v", err)
	}
	if got.TotalEvaluations() != orig.TotalEvaluations() {
		t.Error("file round trip lost evaluations")
	}
}

func TestCampaignErrorsPreserved(t *testing.T) {
	failing := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		return nil, errors.New("simulated node failure")
	})
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 1, PopSize: 4, Generations: 1,
		Evaluator: failing, Parallelism: 2, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCampaign(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ind := got.Runs[0].Generations[0].Evaluated[0]
	if ind.Err == nil || !strings.Contains(ind.Err.Error(), "node failure") {
		t.Errorf("evaluation error not preserved: %v", ind.Err)
	}
	if !ind.Fitness.IsFailure() {
		t.Error("failure fitness not preserved")
	}
}

// TestNonFiniteFitnessRoundTrip is the regression test for the
// persistence bug: json.Marshal rejects ±Inf/NaN outright, so a campaign
// holding even one individual with a non-finite fitness — exactly what a
// diverged or cancelled evaluation leaves behind — could not be saved or
// resumed at all.  Non-finite values must round-trip bit-faithfully
// through the string sentinels.
func TestNonFiniteFitnessRoundTrip(t *testing.T) {
	mk := func(fit ea.Fitness) *ea.Individual {
		ind := ea.NewIndividual(ea.Genome{1.5, -2.25, 0.875})
		ind.Fitness = fit
		ind.Evaluated = true
		return ind
	}
	inds := []*ea.Individual{
		mk(ea.Fitness{math.Inf(1), math.NaN()}),
		mk(ea.Fitness{math.Inf(-1), 3.0625}),
		mk(ea.Fitness{0.1, 0.2}), // finite control
		mk(ea.FailureFitness(2)), // MAXINT sentinel (finite, must stay exact)
	}
	orig := &CampaignResult{Runs: []*nsga2.Result{{
		Generations: []nsga2.GenerationRecord{{
			Gen:       0,
			Evaluated: inds,
			Survivors: ea.Population{inds[2]},
		}},
		Final: ea.Population{inds[2]},
	}}}

	var buf bytes.Buffer
	if err := SaveCampaign(&buf, orig); err != nil {
		t.Fatalf("SaveCampaign with non-finite fitness: %v", err)
	}
	got, err := LoadCampaign(&buf)
	if err != nil {
		t.Fatalf("LoadCampaign: %v", err)
	}
	loaded := got.Runs[0].Generations[0].Evaluated
	if len(loaded) != len(inds) {
		t.Fatalf("loaded %d individuals, want %d", len(loaded), len(inds))
	}
	for i, want := range inds {
		for k := range want.Fitness {
			w, g := want.Fitness[k], loaded[i].Fitness[k]
			if math.IsNaN(w) != math.IsNaN(g) || (!math.IsNaN(w) && w != g) {
				t.Errorf("individual %d objective %d: %v -> %v", i, k, w, g)
			}
		}
		for k := range want.Genome {
			if want.Genome[k] != loaded[i].Genome[k] {
				t.Errorf("individual %d gene %d: %v -> %v", i, k, want.Genome[k], loaded[i].Genome[k])
			}
		}
	}
}

func TestLoadCampaignRejectsBadInput(t *testing.T) {
	if _, err := LoadCampaign(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadCampaign(strings.NewReader(`{"format":"other","version":1}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := LoadCampaign(strings.NewReader(`{"format":"repro-hpo-campaign","version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	bad := `{"format":"repro-hpo-campaign","version":1,"runs":[{"generations":[
	  {"gen":0,"evaluated":[],"survivor_ids":["00000000-0000-0000-0000-000000000000"],"failures":0}]}]}`
	if _, err := LoadCampaign(strings.NewReader(bad)); err == nil {
		t.Error("dangling survivor reference accepted")
	}
}
