// Package hpo implements the paper's hyperparameter-optimization campaign:
// the seven-gene real-valued representation with Table 1's initialization
// ranges and mutation standard deviations, the floor-modulus decoder that
// maps real genes to categorical DeePMD settings (§2.2.2), the input.json
// template substitution and UUID-directory evaluation workflow (§2.2.4),
// and the generational NSGA-II campaign driver (§2.2.3).
package hpo

import (
	"fmt"
	"math"

	"repro/internal/ea"
	"repro/internal/nn"
)

// Gene indices of the seven-element genome (§2.2.1).
const (
	GeneStartLR = iota
	GeneStopLR
	GeneRCut
	GeneRCutSmth
	GeneScaleByWorker
	GeneDescActivFunc
	GeneFittingActivFunc
	NumGenes
)

// GeneNames lists the hyperparameter names in genome order.
var GeneNames = [NumGenes]string{
	"start_lr", "stop_lr", "rcut", "rcut_smth",
	"scale_by_worker", "desc_activ_func", "fitting_activ_func",
}

// Representation bundles the paper's Table 1: per-gene initialization
// ranges (also used as mutation hard bounds) and initial Gaussian-mutation
// standard deviations.
type Representation struct {
	Bounds ea.Bounds
	Std    []float64
}

// PaperRepresentation returns Table 1 exactly.
func PaperRepresentation() Representation {
	return Representation{
		Bounds: ea.Bounds{
			{Lo: 3.51e-8, Hi: 0.01},   // start_lr
			{Lo: 3.51e-8, Hi: 0.0001}, // stop_lr
			{Lo: 6.0, Hi: 12.0},       // rcut (Å)
			{Lo: 2.0, Hi: 6.0},        // rcut_smth (Å)
			{Lo: 0.0, Hi: 3.0},        // scale_by_worker (3 categories)
			{Lo: 0.0, Hi: 5.0},        // desc_activ_func (5 categories)
			{Lo: 0.0, Hi: 5.0},        // fitting_activ_func (5 categories)
		},
		Std: []float64{0.001, 0.0001, 0.0625, 0.0625, 0.0625, 0.0625, 0.0625},
	}
}

// HParams is a decoded hyperparameter set: the phenotype the DeePMD
// training actually consumes.
type HParams struct {
	StartLR       float64
	StopLR        float64
	RCut          float64
	RCutSmth      float64
	ScaleByWorker string // "linear", "sqrt", "none"
	DescActiv     string // "relu", "relu6", "softplus", "sigmoid", "tanh"
	FittingActiv  string
}

// String renders the parameters in Table 3's row order.
func (h HParams) String() string {
	return fmt.Sprintf("start_lr=%.4g stop_lr=%.4g rcut=%.2f rcut_smth=%.2f scale=%s desc=%s fit=%s",
		h.StartLR, h.StopLR, h.RCut, h.RCutSmth, h.ScaleByWorker, h.DescActiv, h.FittingActiv)
}

// DecodeCategorical maps a real gene value to an index in a category set
// of size n using the paper's rule: floor the float, then take the
// modulus, so Gaussian mutation of real genes always lands on a valid
// category (§2.2.2).  For example 5.78 with n=3 → floor → 5 → 5%3 = 2.
func DecodeCategorical(gene float64, n int) int {
	idx := int(math.Floor(gene)) % n
	if idx < 0 {
		idx += n
	}
	return idx
}

// Decode converts a seven-gene genome into hyperparameters.
func Decode(g ea.Genome) (HParams, error) {
	if len(g) != NumGenes {
		return HParams{}, fmt.Errorf("hpo: genome has %d genes, want %d", len(g), NumGenes)
	}
	h := HParams{
		StartLR:       g[GeneStartLR],
		StopLR:        g[GeneStopLR],
		RCut:          g[GeneRCut],
		RCutSmth:      g[GeneRCutSmth],
		ScaleByWorker: nn.ScaleSchemes[DecodeCategorical(g[GeneScaleByWorker], len(nn.ScaleSchemes))],
		DescActiv:     nn.ActivationNames[DecodeCategorical(g[GeneDescActivFunc], len(nn.ActivationNames))],
		FittingActiv:  nn.ActivationNames[DecodeCategorical(g[GeneFittingActivFunc], len(nn.ActivationNames))],
	}
	// DeePMD requires rcut_smth < rcut; the bounds guarantee it
	// (max smth 6.0 = min rcut 6.0 only touches at the degenerate corner).
	if h.RCutSmth >= h.RCut {
		h.RCutSmth = h.RCut * 0.99
	}
	// stop_lr must not exceed start_lr for the exponential decay.
	if h.StopLR > h.StartLR {
		h.StopLR = h.StartLR
	}
	return h, nil
}

// Encode builds a genome whose decoding yields the given parameters, for
// tests and for seeding campaigns with known configurations.  Categorical
// fields map to the center of their first matching integer bin.
func Encode(h HParams) (ea.Genome, error) {
	scaleIdx := indexOf(nn.ScaleSchemes, h.ScaleByWorker)
	descIdx := indexOf(nn.ActivationNames, h.DescActiv)
	fitIdx := indexOf(nn.ActivationNames, h.FittingActiv)
	if scaleIdx < 0 || descIdx < 0 || fitIdx < 0 {
		return nil, fmt.Errorf("hpo: unknown categorical value in %v", h)
	}
	return ea.Genome{
		h.StartLR, h.StopLR, h.RCut, h.RCutSmth,
		float64(scaleIdx) + 0.5, float64(descIdx) + 0.5, float64(fitIdx) + 0.5,
	}, nil
}

func indexOf(list []string, v string) int {
	for i, s := range list {
		if s == v {
			return i
		}
	}
	return -1
}
