package hpo

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// DefaultInputTemplate is the JSON-formatted input template the workflow
// substitutes hyperparameters into (§2.2.4 item 3).  Placeholders use
// Python string.Template syntax ($name / ${name}) because that is the
// mechanism the paper's scripts used; Substitute implements the same
// rules.  The fixed values (embedding {25,50,100}, fitting {240,240,240},
// loss prefactors 0.02/1000/1/1) match §2.1.2.
const DefaultInputTemplate = `{
  "model": {
    "type_map": ["Al", "K", "Cl"],
    "descriptor": {
      "type": "se_e2_a",
      "rcut": $rcut,
      "rcut_smth": $rcut_smth,
      "neuron": [25, 50, 100],
      "axis_neuron": 4,
      "activation_function": "$desc_activ_func"
    },
    "fitting_net": {
      "neuron": [240, 240, 240],
      "activation_function": "$fitting_activ_func"
    }
  },
  "learning_rate": {
    "type": "exp",
    "start_lr": $start_lr,
    "stop_lr": $stop_lr,
    "scale_by_worker": "$scale_by_worker"
  },
  "loss": {
    "start_pref_e": 0.02,
    "limit_pref_e": 1,
    "start_pref_f": 1000,
    "limit_pref_f": 1
  },
  "training": {
    "numb_steps": $numb_steps,
    "batch_size": 1,
    "seed": $seed,
    "disp_freq": $disp_freq,
    "systems": ["$train_dir"],
    "validation_data": {"systems": ["$val_dir"]}
  }
}
`

// Substitute performs Python string.Template-style substitution: $name and
// ${name} are replaced from vars; $$ escapes a literal dollar.  Unknown
// placeholders are an error, mirroring Template.substitute's strictness.
func Substitute(template string, vars map[string]string) (string, error) {
	var b strings.Builder
	i := 0
	for i < len(template) {
		c := template[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 < len(template) && template[i+1] == '$' {
			b.WriteByte('$')
			i += 2
			continue
		}
		j := i + 1
		braced := j < len(template) && template[j] == '{'
		if braced {
			j++
		}
		start := j
		for j < len(template) && isIdentChar(template[j]) {
			if j == start && isDigit(template[j]) {
				break // identifiers cannot start with a digit
			}
			j++
		}
		name := template[start:j]
		if braced {
			if j >= len(template) || template[j] != '}' {
				return "", fmt.Errorf("hpo: unterminated ${ in template at offset %d", i)
			}
			j++
		}
		if name == "" {
			return "", fmt.Errorf("hpo: lone $ at offset %d (use $$ for a literal)", i)
		}
		val, ok := vars[name]
		if !ok {
			return "", fmt.Errorf("hpo: template placeholder $%s has no value", name)
		}
		b.WriteString(val)
		i = j
	}
	return b.String(), nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// TemplateVars builds the substitution map for a decoded hyperparameter
// set plus run-time settings.
func TemplateVars(h HParams, steps, dispFreq int, seed int64, trainDir, valDir string) map[string]string {
	return map[string]string{
		"start_lr":           strconv.FormatFloat(h.StartLR, 'g', -1, 64),
		"stop_lr":            strconv.FormatFloat(h.StopLR, 'g', -1, 64),
		"rcut":               strconv.FormatFloat(h.RCut, 'g', -1, 64),
		"rcut_smth":          strconv.FormatFloat(h.RCutSmth, 'g', -1, 64),
		"scale_by_worker":    h.ScaleByWorker,
		"desc_activ_func":    h.DescActiv,
		"fitting_activ_func": h.FittingActiv,
		"numb_steps":         strconv.Itoa(steps),
		"disp_freq":          strconv.Itoa(dispFreq),
		"seed":               strconv.FormatInt(seed, 10),
		"train_dir":          trainDir,
		"val_dir":            valDir,
	}
}

// RenderInput substitutes hyperparameters into a template (falling back to
// DefaultInputTemplate when template is empty) and returns the input.json
// text.
func RenderInput(template string, vars map[string]string) (string, error) {
	if template == "" {
		template = DefaultInputTemplate
	}
	return Substitute(template, vars)
}

// WriteInput renders and writes input.json into dir.
func WriteInput(dir, template string, vars map[string]string) (string, error) {
	text, err := RenderInput(template, vars)
	if err != nil {
		return "", err
	}
	path := dir + string(os.PathSeparator) + "input.json"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
