package hpo

import (
	"context"
	"math/rand"
	"testing"
)

func BenchmarkDecode(b *testing.B) {
	rep := PaperRepresentation()
	rng := rand.New(rand.NewSource(1))
	g := rep.Bounds.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderInput(b *testing.B) {
	h := HParams{0.0047, 0.0001, 11.32, 2.42, "none", "tanh", "tanh"}
	vars := TemplateVars(h, 40000, 1000, 1, "/data/train", "/data/val")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RenderInput("", vars); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignSurrogateScale(b *testing.B) {
	// One full run at paper per-run scale against the cheap analytic
	// evaluator isolates the EA machinery cost from evaluation cost.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := RunCampaign(benchCtx, CampaignConfig{
			Runs: 1, PopSize: 100, Generations: 6,
			Evaluator: persistEval, Parallelism: 8,
			AnnealFactor: 0.85, BaseSeed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

var benchCtx = context.Background()
