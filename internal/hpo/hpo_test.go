package hpo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/ea"
	"repro/internal/md"
)

func TestPaperRepresentationMatchesTable1(t *testing.T) {
	rep := PaperRepresentation()
	if len(rep.Bounds) != NumGenes || len(rep.Std) != NumGenes {
		t.Fatalf("representation sizes %d/%d, want %d", len(rep.Bounds), len(rep.Std), NumGenes)
	}
	cases := []struct {
		gene     int
		lo, hi   float64
		std      float64
		geneName string
	}{
		{GeneStartLR, 3.51e-8, 0.01, 0.001, "start_lr"},
		{GeneStopLR, 3.51e-8, 0.0001, 0.0001, "stop_lr"},
		{GeneRCut, 6.0, 12.0, 0.0625, "rcut"},
		{GeneRCutSmth, 2.0, 6.0, 0.0625, "rcut_smth"},
		{GeneScaleByWorker, 0.0, 3.0, 0.0625, "scale_by_worker"},
		{GeneDescActivFunc, 0.0, 5.0, 0.0625, "desc_activ_func"},
		{GeneFittingActivFunc, 0.0, 5.0, 0.0625, "fitting_activ_func"},
	}
	for _, c := range cases {
		if rep.Bounds[c.gene].Lo != c.lo || rep.Bounds[c.gene].Hi != c.hi {
			t.Errorf("%s bounds = %v, want [%v, %v]", c.geneName, rep.Bounds[c.gene], c.lo, c.hi)
		}
		if rep.Std[c.gene] != c.std {
			t.Errorf("%s std = %v, want %v", c.geneName, rep.Std[c.gene], c.std)
		}
		if GeneNames[c.gene] != c.geneName {
			t.Errorf("gene %d name = %q, want %q", c.gene, GeneNames[c.gene], c.geneName)
		}
	}
}

func TestDecodeCategoricalPaperExample(t *testing.T) {
	// §2.2.2: gene 5.78 with 3 categories → floor(5.78) % 3 = 2 → "none".
	if got := DecodeCategorical(5.78, 3); got != 2 {
		t.Errorf("DecodeCategorical(5.78, 3) = %d, want 2", got)
	}
	if got := DecodeCategorical(0.99, 5); got != 0 {
		t.Errorf("DecodeCategorical(0.99, 5) = %d, want 0", got)
	}
	if got := DecodeCategorical(4.01, 5); got != 4 {
		t.Errorf("DecodeCategorical(4.01, 5) = %d, want 4", got)
	}
	// Negative genes (possible before clamping) still land in range.
	if got := DecodeCategorical(-0.5, 3); got < 0 || got > 2 {
		t.Errorf("DecodeCategorical(-0.5, 3) = %d out of range", got)
	}
}

func TestQuickDecodeCategoricalAlwaysValid(t *testing.T) {
	f := func(gene float64, n uint8) bool {
		if math.IsNaN(gene) || math.IsInf(gene, 0) || math.Abs(gene) > 1e12 {
			return true
		}
		size := int(n%7) + 1
		idx := DecodeCategorical(gene, size)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeFullGenome(t *testing.T) {
	g := ea.Genome{0.0047, 0.0001, 11.32, 2.42, 2.5, 4.2, 4.9}
	h, err := Decode(g)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if h.StartLR != 0.0047 || h.StopLR != 0.0001 || h.RCut != 11.32 || h.RCutSmth != 2.42 {
		t.Errorf("continuous genes wrong: %+v", h)
	}
	if h.ScaleByWorker != "none" { // floor(2.5)%3 = 2
		t.Errorf("scale = %q, want none", h.ScaleByWorker)
	}
	if h.DescActiv != "tanh" || h.FittingActiv != "tanh" { // floor(4.x)%5 = 4
		t.Errorf("activations = %q, %q, want tanh", h.DescActiv, h.FittingActiv)
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	if _, err := Decode(ea.Genome{1, 2}); err == nil {
		t.Error("short genome accepted")
	}
}

func TestDecodeRepairsInconsistentGenes(t *testing.T) {
	// stop_lr > start_lr must be repaired.
	g := ea.Genome{1e-6, 1e-4, 8, 3, 0.5, 0.5, 0.5}
	h, err := Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.StopLR > h.StartLR {
		t.Errorf("stop_lr %v > start_lr %v after decode", h.StopLR, h.StartLR)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, h := range []HParams{
		{0.0047, 0.0001, 11.32, 2.42, "none", "tanh", "tanh"},
		{0.0058, 0.0001, 10.10, 2.11, "none", "softplus", "tanh"},
		{0.01, 2e-05, 11.32, 2.43, "linear", "relu", "sigmoid"},
		{0.001, 1e-05, 6.5, 5.5, "sqrt", "relu6", "softplus"},
	} {
		g, err := Encode(h)
		if err != nil {
			t.Fatalf("Encode(%v): %v", h, err)
		}
		got, err := Decode(g)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got != h {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
	}
	if _, err := Encode(HParams{ScaleByWorker: "bogus", DescActiv: "tanh", FittingActiv: "tanh"}); err == nil {
		t.Error("Encode accepted bogus categorical")
	}
}

func TestDecodedRandomGenomesAlwaysValid(t *testing.T) {
	rep := PaperRepresentation()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		h, err := Decode(rep.Bounds.Sample(rng))
		if err != nil {
			t.Fatalf("Decode random: %v", err)
		}
		if h.StartLR <= 0 || h.StopLR <= 0 || h.StopLR > h.StartLR {
			t.Errorf("bad learning rates: %+v", h)
		}
		if h.RCutSmth >= h.RCut {
			t.Errorf("rcut_smth %v >= rcut %v", h.RCutSmth, h.RCut)
		}
		valid := map[string]bool{"linear": true, "sqrt": true, "none": true}
		if !valid[h.ScaleByWorker] {
			t.Errorf("bad scale %q", h.ScaleByWorker)
		}
	}
}

func TestSubstitute(t *testing.T) {
	out, err := Substitute("lr=$start_lr act=${desc} esc=$$x", map[string]string{
		"start_lr": "0.001", "desc": "tanh",
	})
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if out != "lr=0.001 act=tanh esc=$x" {
		t.Errorf("Substitute = %q", out)
	}
}

func TestSubstituteErrors(t *testing.T) {
	if _, err := Substitute("$missing", map[string]string{}); err == nil {
		t.Error("missing placeholder accepted")
	}
	if _, err := Substitute("${unterminated", map[string]string{"unterminated": "x"}); err == nil {
		t.Error("unterminated brace accepted")
	}
	if _, err := Substitute("lone $ here", nil); err == nil {
		t.Error("lone $ accepted")
	}
}

func TestRenderInputProducesValidJSON(t *testing.T) {
	h := HParams{0.0047, 0.0001, 8.77, 2.42, "none", "tanh", "softplus"}
	vars := TemplateVars(h, 40000, 1000, 1, "/data/train", "/data/val")
	text, err := RenderInput("", vars)
	if err != nil {
		t.Fatalf("RenderInput: %v", err)
	}
	in, err := deepmd.ParseInput(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rendered input.json does not parse: %v\n%s", err, text)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("rendered input.json invalid: %v", err)
	}
	if in.Model.Descriptor.RCut != 8.77 || in.Model.FittingNet.ActivationFunction != "softplus" {
		t.Errorf("values not substituted: %+v", in.Model)
	}
	if in.Training.NumbSteps != 40000 {
		t.Errorf("numb_steps = %d", in.Training.NumbSteps)
	}
	// Fixed (non-tuned) parameters of §2.1.2 must be present.
	if len(in.Model.Descriptor.Neuron) != 3 || in.Model.Descriptor.Neuron[2] != 100 {
		t.Errorf("embedding sizes = %v, want [25 50 100]", in.Model.Descriptor.Neuron)
	}
	if in.Loss.StartPrefF != 1000 || in.Loss.StartPrefE != 0.02 {
		t.Errorf("prefactors = %+v", in.Loss)
	}
}

// fakeTrainer writes a canned lcurve.out.
type fakeTrainer struct {
	rmseE, rmseF float64
	fail         bool
	sawInput     *deepmd.Input
}

func (f *fakeTrainer) Train(_ context.Context, inputPath, runDir string) error {
	in, err := deepmd.ParseInputFile(inputPath)
	if err != nil {
		return err
	}
	f.sawInput = in
	if f.fail {
		return fmt.Errorf("simulated dp crash")
	}
	content := fmt.Sprintf("#  step      rmse_e_val    rmse_e_trn    rmse_f_val    rmse_f_trn         lr\n"+
		"  1000    %e    1e-3    %e    3e-2    1e-3\n", f.rmseE, f.rmseF)
	return os.WriteFile(filepath.Join(runDir, "lcurve.out"), []byte(content), 0o644)
}

func TestWorkflowEvaluatorEndToEnd(t *testing.T) {
	ft := &fakeTrainer{rmseE: 0.0016, rmseF: 0.0357}
	w := &WorkflowEvaluator{
		WorkDir: t.TempDir(),
		Steps:   40000, DispFreq: 1000, Seed: 7,
		TrainDir: "/tmp/train", ValDir: "/tmp/val",
		Trainer: ft,
	}
	g, _ := Encode(HParams{0.0047, 0.0001, 11.32, 2.42, "none", "tanh", "tanh"})
	fit, err := w.Evaluate(context.Background(), g)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(fit[0]-0.0016) > 1e-9 || math.Abs(fit[1]-0.0357) > 1e-9 {
		t.Errorf("fitness = %v, want [0.0016 0.0357]", fit)
	}
	if ft.sawInput.Model.Descriptor.RCut != 11.32 {
		t.Errorf("trainer saw rcut %v", ft.sawInput.Model.Descriptor.RCut)
	}
	if ft.sawInput.LearningRate.ScaleByWorker != "none" {
		t.Errorf("trainer saw scale %q", ft.sawInput.LearningRate.ScaleByWorker)
	}
}

func TestWorkflowEvaluatorTrainingFailure(t *testing.T) {
	w := &WorkflowEvaluator{
		WorkDir: t.TempDir(),
		Steps:   100, DispFreq: 10,
		Trainer: &fakeTrainer{fail: true},
	}
	g, _ := Encode(HParams{0.001, 1e-5, 8, 3, "none", "tanh", "tanh"})
	if _, err := w.Evaluate(context.Background(), g); err == nil {
		t.Error("failed training returned nil error")
	}
}

func TestWorkflowEvaluatorKeepsRunDir(t *testing.T) {
	dir := t.TempDir()
	w := &WorkflowEvaluator{
		WorkDir: dir, Steps: 1, DispFreq: 1,
		Trainer: &fakeTrainer{rmseE: 1, rmseF: 1},
		Keep:    true,
	}
	g, _ := Encode(HParams{0.001, 1e-5, 8, 3, "none", "tanh", "tanh"})
	if _, err := w.Evaluate(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 UUID run dir, found %d", len(entries))
	}
	// The directory must be named by a UUID and contain input.json +
	// lcurve.out (§2.2.4 steps 2-4).
	name := entries[0].Name()
	if len(name) != 36 || strings.Count(name, "-") != 4 {
		t.Errorf("run dir %q not UUID-named", name)
	}
	for _, f := range []string{"input.json", "lcurve.out"} {
		if _, err := os.Stat(filepath.Join(dir, name, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestRealTrainerEndToEnd(t *testing.T) {
	// A miniature but genuine pipeline: MD data → decode genome → render
	// input.json → train a real model → read fitness from lcurve.out.
	rng := rand.New(rand.NewSource(3))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	data := dataset.Generate(rng, species, 7.0, 498, pot, 0.5, 50, 10, 12)
	data.Shuffle(rng)
	train, val := data.Split(0.25)

	rt := &RealTrainer{Train: train, Val: val, Workers: 2, StepsOverride: 30, ValFrames: 3}
	w := &WorkflowEvaluator{
		WorkDir: t.TempDir(),
		// Use a tiny-network template so the test stays fast.
		Template: strings.Replace(strings.Replace(DefaultInputTemplate,
			"[25, 50, 100]", "[4, 8]", 1),
			"[240, 240, 240]", "[8]", 1),
		Steps: 30, DispFreq: 15, Seed: 5,
		TrainDir: "unused", ValDir: "unused",
		Trainer: TrainerFunc(rt.TrainRun),
	}
	g, _ := Encode(HParams{0.005, 1e-4, 3.5, 2.0, "none", "tanh", "tanh"})
	fit, err := w.Evaluate(context.Background(), g)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(fit) != 2 || fit[0] <= 0 || fit[1] <= 0 {
		t.Errorf("fitness = %v, want two positive losses", fit)
	}
}

func TestCampaignSmoke(t *testing.T) {
	// Tiny campaign against an analytic evaluator: checks plumbing,
	// aggregation, and failure accounting.
	calls := 0
	ev := ea.EvaluatorFunc(func(_ context.Context, g ea.Genome) (ea.Fitness, error) {
		calls++
		if calls%29 == 0 {
			return nil, fmt.Errorf("injected failure")
		}
		h, err := Decode(g)
		if err != nil {
			return nil, err
		}
		return ea.Fitness{h.StartLR, 12 - h.RCut}, nil
	})
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 2, PopSize: 10, Generations: 3,
		Evaluator: ev, Parallelism: 1, AnnealFactor: 0.85, BaseSeed: 42,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	if got := res.TotalEvaluations(); got != 2*4*10 {
		t.Errorf("TotalEvaluations = %d, want 80", got)
	}
	if res.TotalFailures() == 0 {
		t.Error("no failures recorded despite injection")
	}
	if got := len(res.LastGenerations()); got != 20 {
		t.Errorf("pooled last generations = %d, want 20", got)
	}
	front := res.ParetoFront()
	if len(front) == 0 || len(front) > 20 {
		t.Errorf("Pareto front size %d", len(front))
	}
}

func TestCampaignRequiresRuns(t *testing.T) {
	_, err := RunCampaign(context.Background(), CampaignConfig{Runs: 0})
	if err == nil {
		t.Error("Runs=0 accepted")
	}
}

func TestChemicallyAccurate(t *testing.T) {
	cases := []struct {
		f    ea.Fitness
		want bool
	}{
		{ea.Fitness{0.001, 0.035}, true},
		{ea.Fitness{0.005, 0.035}, false}, // energy too high
		{ea.Fitness{0.001, 0.041}, false}, // force too high
		{ea.Fitness{0.0039, 0.0399}, true},
		{ea.FailureFitness(2), false},
		{ea.Fitness{0.001}, false}, // wrong arity
	}
	for _, c := range cases {
		if got := ChemicallyAccurate(c.f); got != c.want {
			t.Errorf("ChemicallyAccurate(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestFilterChemicallyAccurate(t *testing.T) {
	pop := ea.Population{
		{Evaluated: true, Fitness: ea.Fitness{0.001, 0.035}},
		{Evaluated: true, Fitness: ea.Fitness{0.01, 0.5}},
		{Evaluated: false},
	}
	got := FilterChemicallyAccurate(pop)
	if len(got) != 1 || got[0] != pop[0] {
		t.Errorf("filtered %d members", len(got))
	}
}

func TestCampaignEvalTimeout(t *testing.T) {
	slow := ea.EvaluatorFunc(func(ctx context.Context, _ ea.Genome) (ea.Fitness, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Second):
			return ea.Fitness{1, 1}, nil
		}
	})
	res, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 1, PopSize: 4, Generations: 1,
		Evaluator: slow, Parallelism: 4,
		EvalTimeout: 5 * time.Millisecond, BaseSeed: 1,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if res.TotalFailures() != res.TotalEvaluations() {
		t.Errorf("expected all evaluations to time out: %d of %d",
			res.TotalFailures(), res.TotalEvaluations())
	}
}
