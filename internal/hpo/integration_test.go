package hpo

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/md"
)

// TestRealBackendCampaign runs a miniature but complete paper campaign
// with NO surrogate: every fitness evaluation generates input.json in a
// UUID directory, trains a real DeepPot-SE model on MD-generated data,
// and reads fitness from lcurve.out.  This is the §2.2 pipeline end to
// end, scaled from (5 runs × 100 pop × 7 gens × 40k steps) down to
// (1 × 6 × 3 × 25 steps).
func TestRealBackendCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("real trainings in -short mode")
	}
	rng := rand.New(rand.NewSource(31))
	species := []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}
	pot := md.NewPaperBMH(4.0)
	data := dataset.Generate(rng, species, 7.0, 498, pot, 0.5, 60, 8, 16)
	data.Shuffle(rng)
	train, val := data.Split(0.25)

	rt := &RealTrainer{Train: train, Val: val, Workers: 1, StepsOverride: 25, ValFrames: 2}
	tinyTemplate := strings.NewReplacer(
		"[25, 50, 100]", "[3, 6]",
		"[240, 240, 240]", "[6]",
	).Replace(DefaultInputTemplate)
	ev := &WorkflowEvaluator{
		WorkDir:  t.TempDir(),
		Template: tinyTemplate,
		Steps:    25, DispFreq: 25, Seed: 7,
		TrainDir: "in-process", ValDir: "in-process",
		Trainer: TrainerFunc(rt.TrainRun),
	}

	res, err := RunCampaign(context.Background(), CampaignConfig{
		Runs: 1, PopSize: 6, Generations: 2,
		Evaluator: ev, Parallelism: 3, AnnealFactor: 0.85, BaseSeed: 17,
	})
	if err != nil {
		t.Fatalf("RunCampaign(real): %v", err)
	}
	if res.TotalEvaluations() != 18 {
		t.Fatalf("evaluations = %d, want 18", res.TotalEvaluations())
	}
	// Real trainings may fail on extreme hyperparameters; at least the
	// majority must succeed and the frontier must be non-empty with
	// finite, positive losses.
	if res.TotalFailures() > 9 {
		t.Errorf("too many failures: %d of 18", res.TotalFailures())
	}
	front := res.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty frontier from real campaign")
	}
	for _, ind := range front {
		if ind.Fitness.IsFailure() {
			continue
		}
		if ind.Fitness[0] <= 0 || ind.Fitness[1] <= 0 {
			t.Errorf("non-positive loss on frontier: %v", ind.Fitness)
		}
	}
}
