package hpo

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"repro/internal/ea"
	"repro/internal/nsga2"
	"repro/internal/uuid"
)

// The persistence format stores every evaluation of every generation of
// every run, so a 12-hour campaign (the paper's Summit jobs) can be
// analyzed offline or resumed into the figure/table generators without
// re-running anything.

// JSONFloats is a float slice whose non-finite members survive JSON:
// NaN and ±Inf are encoded as the string sentinels "NaN", "+Inf" and
// "-Inf" (encoding/json rejects the bare values outright).  Rank and
// crowding distance are dropped rather than sentinel-encoded because
// they are recomputable; fitness values are not — an evaluator that
// returns +Inf for a diverged loss, or the NaNs a cancelled training
// leaves behind, must round-trip or the whole campaign refuses to save.
// Finite values use strconv's shortest round-trip formatting, so no
// precision is lost either way.  Exported because every API surface that
// serializes fitness vectors (the campaign service's frontier endpoint,
// for one) has the same problem.
type JSONFloats []float64

// MarshalJSON implements json.Marshaler with sentinel strings for
// non-finite values.
func (f JSONFloats) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16*len(f)+2)
	buf = append(buf, '[')
	for i, v := range f {
		if i > 0 {
			buf = append(buf, ',')
		}
		switch {
		case math.IsNaN(v):
			buf = append(buf, `"NaN"`...)
		case math.IsInf(v, 1):
			buf = append(buf, `"+Inf"`...)
		case math.IsInf(v, -1):
			buf = append(buf, `"-Inf"`...)
		default:
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
	}
	return append(buf, ']'), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting both plain
// numbers and the sentinel strings.
func (f *JSONFloats) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(JSONFloats, len(raw))
	for i, r := range raw {
		if len(r) > 0 && r[0] == '"' {
			var s string
			if err := json.Unmarshal(r, &s); err != nil {
				return err
			}
			switch s {
			case "NaN":
				out[i] = math.NaN()
			case "+Inf", "Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			default:
				return fmt.Errorf("hpo: invalid float sentinel %q", s)
			}
			continue
		}
		v, err := strconv.ParseFloat(string(r), 64)
		if err != nil {
			return fmt.Errorf("hpo: invalid float %q: %w", r, err)
		}
		out[i] = v
	}
	*f = out
	return nil
}

// savedIndividual is the JSON form of one evaluated individual.  Rank and
// crowding distance are omitted (recomputable; see JSONFloats for why
// fitness gets the sentinel treatment instead).
type savedIndividual struct {
	ID        string      `json:"id"`
	Genome    JSONFloats `json:"genome"`
	Fitness   JSONFloats `json:"fitness"`
	Err       string      `json:"err,omitempty"`
	RuntimeMS int64       `json:"runtime_ms"`
	Birth     int         `json:"birth"`
}

type savedGeneration struct {
	Gen         int               `json:"gen"`
	Evaluated   []savedIndividual `json:"evaluated"`
	SurvivorIDs []string          `json:"survivor_ids"`
	Failures    int               `json:"failures"`
}

type savedRun struct {
	Generations []savedGeneration `json:"generations"`
}

type savedCampaign struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Runs    []savedRun `json:"runs"`
}

const (
	campaignFormat  = "repro-hpo-campaign"
	campaignVersion = 1
)

// SaveCampaign writes a campaign result as JSON.
func SaveCampaign(w io.Writer, c *CampaignResult) error {
	sc := savedCampaign{Format: campaignFormat, Version: campaignVersion}
	for _, run := range c.Runs {
		var sr savedRun
		for _, gen := range run.Generations {
			sg := savedGeneration{Gen: gen.Gen, Failures: gen.Failures}
			for _, ind := range gen.Evaluated {
				si := savedIndividual{
					ID:        ind.ID.String(),
					Genome:    JSONFloats(ind.Genome),
					Fitness:   JSONFloats(ind.Fitness),
					RuntimeMS: ind.Runtime.Milliseconds(),
					Birth:     ind.Birth,
				}
				if ind.Err != nil {
					si.Err = ind.Err.Error()
				}
				sg.Evaluated = append(sg.Evaluated, si)
			}
			for _, ind := range gen.Survivors {
				sg.SurvivorIDs = append(sg.SurvivorIDs, ind.ID.String())
			}
			sr.Generations = append(sr.Generations, sg)
		}
		sc.Runs = append(sc.Runs, sr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&sc)
}

// SaveCampaignFile writes the campaign to path.
func SaveCampaignFile(path string, c *CampaignResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCampaign(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// savedErr restores evaluation errors as opaque strings.
type savedErr string

func (e savedErr) Error() string { return string(e) }

// LoadCampaign reads a campaign saved with SaveCampaign.  Individuals are
// reconstructed with ranks/distances recomputed per generation, and
// survivors resolve to the same objects as the evaluated individuals they
// reference.
func LoadCampaign(r io.Reader) (*CampaignResult, error) {
	var sc savedCampaign
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("hpo: decoding campaign: %w", err)
	}
	if sc.Format != campaignFormat {
		return nil, fmt.Errorf("hpo: not a campaign file (format %q)", sc.Format)
	}
	if sc.Version != campaignVersion {
		return nil, fmt.Errorf("hpo: unsupported campaign version %d", sc.Version)
	}
	out := &CampaignResult{}
	for ri, sr := range sc.Runs {
		run := &nsga2.Result{}
		byID := map[string]*ea.Individual{}
		for _, sg := range sr.Generations {
			rec := nsga2.GenerationRecord{Gen: sg.Gen, Failures: sg.Failures}
			for _, si := range sg.Evaluated {
				id, err := uuid.Parse(si.ID)
				if err != nil {
					return nil, fmt.Errorf("hpo: run %d gen %d: %w", ri, sg.Gen, err)
				}
				ind := &ea.Individual{
					ID:        id,
					Genome:    ea.Genome(si.Genome),
					Fitness:   ea.Fitness(si.Fitness),
					Evaluated: true,
					Runtime:   time.Duration(si.RuntimeMS) * time.Millisecond,
					Birth:     si.Birth,
				}
				if si.Err != "" {
					ind.Err = savedErr(si.Err)
				}
				byID[si.ID] = ind
				rec.Evaluated = append(rec.Evaluated, ind)
			}
			for _, sid := range sg.SurvivorIDs {
				ind, ok := byID[sid]
				if !ok {
					return nil, fmt.Errorf("hpo: run %d gen %d: survivor %s not among evaluated", ri, sg.Gen, sid)
				}
				rec.Survivors = append(rec.Survivors, ind)
			}
			run.Generations = append(run.Generations, rec)
		}
		if n := len(run.Generations); n > 0 {
			run.Final = run.Generations[n-1].Survivors
			// Recompute ranks and crowding on the final population so the
			// analyses that read them behave as after a live run.
			fronts := nsga2.RankOrdinalSort(run.Final)
			nsga2.CrowdingDistanceAll(fronts)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// LoadCampaignFile reads a campaign from path.
func LoadCampaignFile(path string) (*CampaignResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCampaign(f)
}
