package hpo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/ea"
	"repro/internal/nsga2"
	"repro/internal/uuid"
)

// The persistence format stores every evaluation of every generation of
// every run, so a 12-hour campaign (the paper's Summit jobs) can be
// analyzed offline or resumed into the figure/table generators without
// re-running anything.

// savedIndividual is the JSON form of one evaluated individual.  Rank and
// crowding distance are omitted (recomputable, and +Inf is not valid
// JSON).
type savedIndividual struct {
	ID        string    `json:"id"`
	Genome    []float64 `json:"genome"`
	Fitness   []float64 `json:"fitness"`
	Err       string    `json:"err,omitempty"`
	RuntimeMS int64     `json:"runtime_ms"`
	Birth     int       `json:"birth"`
}

type savedGeneration struct {
	Gen         int               `json:"gen"`
	Evaluated   []savedIndividual `json:"evaluated"`
	SurvivorIDs []string          `json:"survivor_ids"`
	Failures    int               `json:"failures"`
}

type savedRun struct {
	Generations []savedGeneration `json:"generations"`
}

type savedCampaign struct {
	Format  string     `json:"format"`
	Version int        `json:"version"`
	Runs    []savedRun `json:"runs"`
}

const (
	campaignFormat  = "repro-hpo-campaign"
	campaignVersion = 1
)

// SaveCampaign writes a campaign result as JSON.
func SaveCampaign(w io.Writer, c *CampaignResult) error {
	sc := savedCampaign{Format: campaignFormat, Version: campaignVersion}
	for _, run := range c.Runs {
		var sr savedRun
		for _, gen := range run.Generations {
			sg := savedGeneration{Gen: gen.Gen, Failures: gen.Failures}
			for _, ind := range gen.Evaluated {
				si := savedIndividual{
					ID:        ind.ID.String(),
					Genome:    ind.Genome,
					Fitness:   ind.Fitness,
					RuntimeMS: ind.Runtime.Milliseconds(),
					Birth:     ind.Birth,
				}
				if ind.Err != nil {
					si.Err = ind.Err.Error()
				}
				sg.Evaluated = append(sg.Evaluated, si)
			}
			for _, ind := range gen.Survivors {
				sg.SurvivorIDs = append(sg.SurvivorIDs, ind.ID.String())
			}
			sr.Generations = append(sr.Generations, sg)
		}
		sc.Runs = append(sc.Runs, sr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&sc)
}

// SaveCampaignFile writes the campaign to path.
func SaveCampaignFile(path string, c *CampaignResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCampaign(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// savedErr restores evaluation errors as opaque strings.
type savedErr string

func (e savedErr) Error() string { return string(e) }

// LoadCampaign reads a campaign saved with SaveCampaign.  Individuals are
// reconstructed with ranks/distances recomputed per generation, and
// survivors resolve to the same objects as the evaluated individuals they
// reference.
func LoadCampaign(r io.Reader) (*CampaignResult, error) {
	var sc savedCampaign
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("hpo: decoding campaign: %w", err)
	}
	if sc.Format != campaignFormat {
		return nil, fmt.Errorf("hpo: not a campaign file (format %q)", sc.Format)
	}
	if sc.Version != campaignVersion {
		return nil, fmt.Errorf("hpo: unsupported campaign version %d", sc.Version)
	}
	out := &CampaignResult{}
	for ri, sr := range sc.Runs {
		run := &nsga2.Result{}
		byID := map[string]*ea.Individual{}
		for _, sg := range sr.Generations {
			rec := nsga2.GenerationRecord{Gen: sg.Gen, Failures: sg.Failures}
			for _, si := range sg.Evaluated {
				id, err := uuid.Parse(si.ID)
				if err != nil {
					return nil, fmt.Errorf("hpo: run %d gen %d: %w", ri, sg.Gen, err)
				}
				ind := &ea.Individual{
					ID:        id,
					Genome:    si.Genome,
					Fitness:   si.Fitness,
					Evaluated: true,
					Runtime:   time.Duration(si.RuntimeMS) * time.Millisecond,
					Birth:     si.Birth,
				}
				if si.Err != "" {
					ind.Err = savedErr(si.Err)
				}
				byID[si.ID] = ind
				rec.Evaluated = append(rec.Evaluated, ind)
			}
			for _, sid := range sg.SurvivorIDs {
				ind, ok := byID[sid]
				if !ok {
					return nil, fmt.Errorf("hpo: run %d gen %d: survivor %s not among evaluated", ri, sg.Gen, sid)
				}
				rec.Survivors = append(rec.Survivors, ind)
			}
			run.Generations = append(run.Generations, rec)
		}
		if n := len(run.Generations); n > 0 {
			run.Final = run.Generations[n-1].Survivors
			// Recompute ranks and crowding on the final population so the
			// analyses that read them behave as after a live run.
			fronts := nsga2.RankOrdinalSort(run.Final)
			nsga2.CrowdingDistanceAll(fronts)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// LoadCampaignFile reads a campaign from path.
func LoadCampaignFile(path string) (*CampaignResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCampaign(f)
}
