package hpo

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ea"
	"repro/internal/nsga2"
)

// newSeededRand builds a deterministic rand for model initialization.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// CampaignConfig describes one or more independent NSGA-II deployments,
// the paper's five 100-node Summit jobs (§2.2.5, §3.1).
type CampaignConfig struct {
	// Runs is the number of independent EA deployments (5 in the paper).
	Runs int
	// PopSize is parents = offspring per generation (100 in the paper,
	// one per Summit node).
	PopSize int
	// Generations is the number of offspring generations (6 in the paper,
	// giving 7 evaluation rounds including generation 0).
	Generations int
	// Evaluator scores genomes; typically a surrogate or a
	// WorkflowEvaluator.
	Evaluator ea.Evaluator
	// Parallelism is concurrent evaluations per run (the worker count).
	Parallelism int
	// EvalTimeout is the per-evaluation wall limit (2 h in the paper).
	EvalTimeout time.Duration
	// AnnealFactor multiplies mutation σ per generation (0.85).
	AnnealFactor float64
	// BaseSeed seeds run r with BaseSeed + r.
	BaseSeed int64
	// Representation defaults to PaperRepresentation when zero.
	Representation Representation
	// Observer, if non-nil, receives per-run, per-generation progress.
	Observer func(run, gen int, evaluated, survivors ea.Population)
}

// CampaignResult aggregates the independent runs.
type CampaignResult struct {
	Runs []*nsga2.Result
}

// LastGenerations pools the final surviving populations of all runs: the
// solution set the paper analyzes in Figs. 2–3 and Tables 2–3.
func (c *CampaignResult) LastGenerations() ea.Population {
	var pool ea.Population
	for _, r := range c.Runs {
		pool = append(pool, r.Final...)
	}
	return pool
}

// ParetoFront returns the non-dominated subset of the pooled last
// generations (Fig. 2).
func (c *CampaignResult) ParetoFront() ea.Population {
	return nsga2.NonDominated(c.LastGenerations())
}

// TotalEvaluations counts all trainings across runs (3500 in the paper).
func (c *CampaignResult) TotalEvaluations() int {
	n := 0
	for _, r := range c.Runs {
		n += r.TotalEvaluations()
	}
	return n
}

// TotalFailures counts failed trainings across runs (25 in the paper).
func (c *CampaignResult) TotalFailures() int {
	n := 0
	for _, r := range c.Runs {
		n += r.TotalFailures()
	}
	return n
}

// LastGenFailures counts failures in the final generation of every run
// (0 in the paper).
func (c *CampaignResult) LastGenFailures() int {
	n := 0
	for _, r := range c.Runs {
		if len(r.Generations) > 0 {
			n += r.Generations[len(r.Generations)-1].Failures
		}
	}
	return n
}

// RunCampaign executes the configured number of independent NSGA-II runs
// sequentially and returns their pooled results.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("hpo: Runs must be positive")
	}
	rep := cfg.Representation
	if rep.Bounds == nil {
		rep = PaperRepresentation()
	}
	out := &CampaignResult{}
	for run := 0; run < cfg.Runs; run++ {
		runIdx := run
		var observer func(gen int, evaluated, survivors ea.Population)
		if cfg.Observer != nil {
			observer = func(gen int, evaluated, survivors ea.Population) {
				cfg.Observer(runIdx, gen, evaluated, survivors)
			}
		}
		res, err := nsga2.Run(ctx, nsga2.Config{
			PopSize:      cfg.PopSize,
			Generations:  cfg.Generations,
			Bounds:       rep.Bounds,
			InitialStd:   rep.Std,
			AnnealFactor: cfg.AnnealFactor,
			Evaluator:    cfg.Evaluator,
			Pool: ea.PoolConfig{
				Parallelism: cfg.Parallelism,
				Timeout:     cfg.EvalTimeout,
				Objectives:  2,
			},
			Seed:     cfg.BaseSeed + int64(run),
			Observer: observer,
		})
		if err != nil {
			return out, fmt.Errorf("hpo: run %d: %w", run, err)
		}
		out.Runs = append(out.Runs, res)
	}
	return out, nil
}

// ChemicallyAccurate reports whether a fitness meets the paper's §3.2
// thresholds: energy error below 0.004 eV/atom and force error below
// 0.04 eV/Å.
func ChemicallyAccurate(f ea.Fitness) bool {
	const (
		energyLimit = 0.004 // eV/atom
		forceLimit  = 0.04  // eV/Å
	)
	return len(f) == 2 && !f.IsFailure() && f[0] < energyLimit && f[1] < forceLimit
}

// FilterChemicallyAccurate returns the members meeting the chemical
// accuracy thresholds (the blue lines of Fig. 3).
func FilterChemicallyAccurate(pop ea.Population) ea.Population {
	var out ea.Population
	for _, ind := range pop {
		if ind.Evaluated && ChemicallyAccurate(ind.Fitness) {
			out = append(out, ind)
		}
	}
	return out
}
