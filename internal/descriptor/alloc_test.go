package descriptor

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestSteadyStateAllocs pins the pooled Forward/Backward/Release cycle —
// and the training-only BackwardParams variant — at zero allocations per
// call once the env pool and internal buffers are warm.  A regression
// here means the convenience API started leaking Envs (Release lost) or
// an internal scratch stopped being recycled.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; pooled paths allocate by design")
	}
	rng := rand.New(rand.NewSource(9))
	d, err := New(rng, Config{
		RCut: 4.0, RCutSmth: 1.0,
		EmbeddingSizes: []int{4, 8},
		AxisNeurons:    2,
		Activation:     nn.Tanh,
		NumSpecies:     3,
		NeighborNorm:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	box := 6.0
	coord := make([]float64, 3*n)
	types := make([]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			coord[3*i+k] = rng.Float64() * box
		}
		types[i] = i % 3
	}
	dOut := make([]float64, d.Cfg.OutDim())
	for i := range dOut {
		dOut[i] = 1
	}
	dcoord := make([]float64, 3*n)

	// Warm the pool and every size-dependent buffer: two sweeps over all
	// atoms cover the largest neighbourhood and every embedding batch.
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < n; i++ {
			env := d.Forward(coord, types, box, i)
			d.Backward(env, dOut, dcoord, true)
			d.BackwardParams(env, dOut)
			d.Release(env)
		}
	}

	atom := 0
	cases := []struct {
		name string
		fn   func()
	}{
		{"Forward+Release", func() {
			env := d.Forward(coord, types, box, atom%n)
			d.Release(env)
			atom++
		}},
		{"Forward+Backward+Release", func() {
			env := d.Forward(coord, types, box, atom%n)
			d.Backward(env, dOut, dcoord, true)
			d.Release(env)
			atom++
		}},
		{"Forward+BackwardParams+Release", func() {
			env := d.Forward(coord, types, box, atom%n)
			d.BackwardParams(env, dOut)
			d.Release(env)
			atom++
		}},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(50, tc.fn); got != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", tc.name, got)
		}
	}
}

// TestBackwardParamsMatchesBackward verifies the training-only backward
// accumulates exactly the parameter gradients of the full backward, bit
// for bit, on a fresh accumulator.
func TestBackwardParamsMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := Config{
		RCut: 4.0, RCutSmth: 1.0,
		EmbeddingSizes: []int{4, 8},
		AxisNeurons:    2,
		Activation:     nn.Tanh,
		NumSpecies:     3,
		NeighborNorm:   6,
	}
	d, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	box := 5.0
	coord := make([]float64, 3*n)
	types := make([]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			coord[3*i+k] = rng.Float64() * box
		}
		types[i] = i % 3
	}
	dOut := make([]float64, cfg.OutDim())
	for i := range dOut {
		dOut[i] = rng.NormFloat64()
	}
	dcoord := make([]float64, 3*n)

	for i := 0; i < n; i++ {
		env := d.Forward(coord, types, box, i)
		d.Backward(env, dOut, dcoord, true)
		want := flatGrads(d)
		d.ZeroGrad()
		d.BackwardParams(env, dOut)
		got := flatGrads(d)
		d.ZeroGrad()
		d.Release(env)
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("atom %d: grad[%d] = %v (BackwardParams) vs %v (Backward)", i, k, got[k], want[k])
			}
		}
	}
}

func flatGrads(d *Descriptor) []float64 {
	var out []float64
	for _, pg := range d.Params() {
		out = append(out, pg.Grad...)
	}
	return out
}
