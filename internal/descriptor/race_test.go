//go:build race

package descriptor

// raceEnabled reports that this binary was built with -race.  The race
// detector makes sync.Pool deliberately drop items (to expose reuse
// races), so pooled paths cannot stay allocation-free under it.
const raceEnabled = true
