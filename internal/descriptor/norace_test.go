//go:build !race

package descriptor

const raceEnabled = false
