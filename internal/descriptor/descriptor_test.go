package descriptor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

func TestSwitchRegions(t *testing.T) {
	s := SwitchFunc{RMin: 2, RMax: 6}
	if got := s.Eval(1.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("s(1) = %v, want 1 (1/r region)", got)
	}
	if got := s.Eval(6.0); got != 0 {
		t.Errorf("s(rcut) = %v, want 0", got)
	}
	if got := s.Eval(7.0); got != 0 {
		t.Errorf("s(beyond) = %v, want 0", got)
	}
	if got := s.Eval(0); got != 0 {
		t.Errorf("s(0) = %v, want clamp 0", got)
	}
	// Continuity at rmin: p(0)=1 so s(rmin) = 1/rmin.
	if got := s.Eval(2.0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("s(rmin) = %v, want 0.5", got)
	}
}

func TestSwitchSmoothAtEnds(t *testing.T) {
	s := SwitchFunc{RMin: 2, RMax: 6}
	// Derivative continuity at rmin: left deriv = -1/r², right deriv from
	// polynomial with p'(0)=0 → also -1/r².
	_, dl := s.EvalDeriv(2 - 1e-9)
	_, dr := s.EvalDeriv(2 + 1e-9)
	if math.Abs(dl-dr) > 1e-6 {
		t.Errorf("ds/dr discontinuous at rmin: %v vs %v", dl, dr)
	}
	// At rcut both value and derivative vanish.
	v, d := s.EvalDeriv(6 - 1e-9)
	if math.Abs(v) > 1e-6 || math.Abs(d) > 1e-5 {
		t.Errorf("s, ds/dr at rcut⁻ = %v, %v; want ≈0, ≈0", v, d)
	}
}

func TestSwitchDerivativeFiniteDiff(t *testing.T) {
	s := SwitchFunc{RMin: 2, RMax: 6}
	const h = 1e-7
	for _, r := range []float64{0.5, 1.5, 2.5, 3.7, 5.0, 5.9} {
		vp := s.Eval(r + h)
		vm := s.Eval(r - h)
		fd := (vp - vm) / (2 * h)
		_, got := s.EvalDeriv(r)
		if math.Abs(got-fd) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("ds/dr(%v) = %v, finite diff %v", r, got, fd)
		}
	}
}

func TestSwitchMonotoneDecreasing(t *testing.T) {
	s := SwitchFunc{RMin: 2, RMax: 6}
	f := func(raw uint16) bool {
		r := 0.1 + float64(raw)/65535*6.5
		_, d := s.EvalDeriv(r)
		return d <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testConfig() Config {
	return Config{
		RCut: 4.0, RCutSmth: 1.0,
		EmbeddingSizes: []int{6, 8},
		AxisNeurons:    3,
		Activation:     nn.Tanh,
		NumSpecies:     2,
		NeighborNorm:   4,
	}
}

// testConfiguration builds a small non-symmetric atom cluster.
func testConfiguration() (coord []float64, types []int, box float64) {
	coord = []float64{
		1.0, 1.0, 1.0,
		2.3, 1.1, 0.9,
		1.2, 2.9, 1.4,
		3.6, 3.3, 2.8,
		0.4, 0.5, 3.1,
	}
	types = []int{0, 1, 1, 0, 1}
	return coord, types, 8.0
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good): %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.RCut = 0 },
		func(c *Config) { c.RCutSmth = 5 },
		func(c *Config) { c.EmbeddingSizes = nil },
		func(c *Config) { c.AxisNeurons = 0 },
		func(c *Config) { c.AxisNeurons = 100 },
		func(c *Config) { c.NumSpecies = 0 },
	}
	for i, mut := range bad {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDescriptorOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := New(rng, testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	coord, types, box := testConfiguration()
	env := d.Forward(coord, types, box, 0)
	if len(env.Out()) != d.Cfg.OutDim() {
		t.Errorf("descriptor dim %d, want %d", len(env.Out()), d.Cfg.OutDim())
	}
	if d.Cfg.OutDim() != 8*3 {
		t.Errorf("OutDim = %d, want 24", d.Cfg.OutDim())
	}
}

func TestDescriptorTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, _ := New(rng, testConfig())
	coord, types, box := testConfiguration()
	env1 := d.Forward(coord, types, box, 0)

	shifted := make([]float64, len(coord))
	for i := range coord {
		shifted[i] = coord[i] + 0.37 // uniform shift, wrapped by min-image
	}
	env2 := d.Forward(shifted, types, box, 0)
	for k := range env1.Out() {
		if math.Abs(env1.Out()[k]-env2.Out()[k]) > 1e-10 {
			t.Fatalf("descriptor not translation invariant at %d: %v vs %v", k, env1.Out()[k], env2.Out()[k])
		}
	}
}

func TestDescriptorRotationInvariance(t *testing.T) {
	// The DeepPot-SE matrix D = T1ᵀT1 contracts the Cartesian axis away,
	// so rotating the whole configuration about the center atom must leave
	// D unchanged (no PBC for a clean rotation).
	rng := rand.New(rand.NewSource(3))
	d, _ := New(rng, testConfig())
	coord, types, _ := testConfiguration()
	env1 := d.Forward(coord, types, 0, 0)

	// Rotate 90° about z around atom 0.
	cx, cy := coord[0], coord[1]
	rot := make([]float64, len(coord))
	copy(rot, coord)
	for i := 0; i < len(types); i++ {
		x, y := coord[3*i]-cx, coord[3*i+1]-cy
		rot[3*i] = cx - y
		rot[3*i+1] = cy + x
	}
	env2 := d.Forward(rot, types, 0, 0)
	for k := range env1.Out() {
		if math.Abs(env1.Out()[k]-env2.Out()[k]) > 1e-9 {
			t.Fatalf("descriptor not rotation invariant at %d: %v vs %v", k, env1.Out()[k], env2.Out()[k])
		}
	}
}

func TestDescriptorPermutationCovariance(t *testing.T) {
	// Swapping two same-type neighbours must not change the descriptor.
	rng := rand.New(rand.NewSource(4))
	d, _ := New(rng, testConfig())
	coord, types, box := testConfiguration()
	env1 := d.Forward(coord, types, box, 0)

	swapped := make([]float64, len(coord))
	copy(swapped, coord)
	// Atoms 1 and 2 are both type 1: swap their coordinates.
	for k := 0; k < 3; k++ {
		swapped[3*1+k], swapped[3*2+k] = swapped[3*2+k], swapped[3*1+k]
	}
	env2 := d.Forward(swapped, types, box, 0)
	for k := range env1.Out() {
		if math.Abs(env1.Out()[k]-env2.Out()[k]) > 1e-10 {
			t.Fatalf("descriptor not permutation invariant at %d", k)
		}
	}
}

func TestDescriptorSmoothAtCutoff(t *testing.T) {
	// Moving a neighbour across the cutoff changes the descriptor
	// continuously (this is the whole point of rcut_smth).
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	d, _ := New(rng, cfg)
	types := []int{0, 1}
	norm := func(r float64) float64 {
		coord := []float64{0, 0, 0, r, 0, 0}
		out := d.Forward(coord, types, 0, 0).Out()
		s := 0.0
		for _, v := range out {
			s += v * v
		}
		return math.Sqrt(s)
	}
	in := norm(cfg.RCut - 1e-6)
	outv := norm(cfg.RCut + 1e-6)
	if outv != 0 {
		t.Errorf("descriptor beyond cutoff = %v, want 0", outv)
	}
	if in > 1e-8 {
		t.Errorf("descriptor just inside cutoff = %v, want ≈0 (smooth vanish)", in)
	}
}

func TestDescriptorCoordinateGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := New(rng, testConfig())
	coord, types, box := testConfiguration()

	// Scalar loss L = Σ_k w_k·D_k with fixed random weights.
	w := make([]float64, d.Cfg.OutDim())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func(c []float64) float64 {
		env := d.Forward(c, types, box, 0)
		s := 0.0
		for k, v := range env.Out() {
			s += w[k] * v
		}
		return s
	}

	env := d.Forward(coord, types, box, 0)
	dcoord := make([]float64, len(coord))
	d.Backward(env, w, dcoord, false)

	const h = 1e-6
	for idx := 0; idx < len(coord); idx++ {
		orig := coord[idx]
		coord[idx] = orig + h
		lp := loss(coord)
		coord[idx] = orig - h
		lm := loss(coord)
		coord[idx] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-dcoord[idx]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("dL/dcoord[%d] = %v, finite diff %v", idx, dcoord[idx], fd)
		}
	}
}

func TestDescriptorParameterGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, _ := New(rng, testConfig())
	coord, types, box := testConfiguration()
	w := make([]float64, d.Cfg.OutDim())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		env := d.Forward(coord, types, box, 0)
		s := 0.0
		for k, v := range env.Out() {
			s += w[k] * v
		}
		return s
	}

	d.ZeroGrad()
	env := d.Forward(coord, types, box, 0)
	dcoord := make([]float64, len(coord))
	d.Backward(env, w, dcoord, true)

	const h = 1e-6
	for pi, pg := range d.Params() {
		for j := 0; j < len(pg.Param); j += 5 {
			orig := pg.Param[j]
			pg.Param[j] = orig + h
			lp := loss()
			pg.Param[j] = orig - h
			lm := loss()
			pg.Param[j] = orig
			fd := (lp - lm) / (2 * h)
			if math.Abs(fd-pg.Grad[j]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("param %d[%d]: grad %v, finite diff %v", pi, j, pg.Grad[j], fd)
			}
		}
	}
}

func TestBackwardInferenceDoesNotTouchParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, _ := New(rng, testConfig())
	coord, types, box := testConfiguration()
	d.ZeroGrad()
	env := d.Forward(coord, types, box, 0)
	dOut := make([]float64, d.Cfg.OutDim())
	for i := range dOut {
		dOut[i] = 1
	}
	dcoord := make([]float64, len(coord))
	d.Backward(env, dOut, dcoord, false)
	for _, pg := range d.Params() {
		for _, g := range pg.Grad {
			if g != 0 {
				t.Fatal("inference Backward accumulated parameter gradients")
			}
		}
	}
}

func TestIsolatedAtomZeroDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, _ := New(rng, testConfig())
	coord := []float64{0, 0, 0, 100, 100, 100}
	types := []int{0, 1}
	env := d.Forward(coord, types, 0, 0)
	for k, v := range env.Out() {
		if v != 0 {
			t.Errorf("isolated atom descriptor[%d] = %v, want 0", k, v)
		}
	}
}

func TestParamCountPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, _ := New(rng, testConfig())
	// 2 species × ((1×6+6) + (6×8+8)) = 2 × 68 = 136
	if got := d.ParamCount(); got != 136 {
		t.Errorf("ParamCount = %d, want 136", got)
	}
}

func TestPairTypeEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testConfig()
	cfg.PairTypeEmbedding = true
	d, err := New(rng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(d.Embed) != cfg.NumSpecies*cfg.NumSpecies {
		t.Fatalf("pair embedding built %d nets, want %d", len(d.Embed), cfg.NumSpecies*cfg.NumSpecies)
	}
	coord, types, box := testConfiguration()
	w := make([]float64, d.Cfg.OutDim())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func(c []float64) float64 {
		env := d.Forward(c, types, box, 0)
		s := 0.0
		for k, v := range env.Out() {
			s += w[k] * v
		}
		return s
	}
	env := d.Forward(coord, types, box, 0)
	dcoord := make([]float64, len(coord))
	d.Backward(env, w, dcoord, false)
	const h = 1e-6
	for idx := 0; idx < len(coord); idx += 2 {
		orig := coord[idx]
		coord[idx] = orig + h
		lp := loss(coord)
		coord[idx] = orig - h
		lm := loss(coord)
		coord[idx] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-dcoord[idx]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("pair-embedding dL/dcoord[%d] = %v, finite diff %v", idx, dcoord[idx], fd)
		}
	}
}

func TestPairTypeEmbeddingDiffersByCenter(t *testing.T) {
	// With pair embeddings, two centers of different species seeing the
	// same neighbour geometry get different descriptors; with shared
	// embeddings they would match.
	rng := rand.New(rand.NewSource(12))
	cfg := testConfig()
	cfg.PairTypeEmbedding = true
	d, _ := New(rng, cfg)
	// Symmetric configuration: atoms 0 and 2 are different types, both at
	// distance 1.5 from atom 1 (type 1).
	coord := []float64{0, 0, 0, 1.5, 0, 0, 3.0, 0, 0}
	types := []int{0, 1, 0}
	// Atom 0 (type 0) and atom 2 (type 0) see identical environments.
	e0 := d.Forward(coord, types, 0, 0).Out()
	e2 := d.Forward(coord, types, 0, 2).Out()
	for k := range e0 {
		if math.Abs(e0[k]-e2[k]) > 1e-12 {
			t.Fatal("same-species centers with mirrored environments disagree")
		}
	}
	// A type-1 center with the same neighbour distance uses a different
	// pair net, so its descriptor differs from a type-0 center's.
	coordB := []float64{0, 0, 0, 1.5, 0, 0}
	eA := d.Forward(coordB, []int{0, 0}, 0, 0).Out()
	eB := d.Forward(coordB, []int{1, 0}, 0, 0).Out()
	same := true
	for k := range eA {
		if math.Abs(eA[k]-eB[k]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Error("pair embedding gave identical descriptors for different center types")
	}
}
