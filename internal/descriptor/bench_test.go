package descriptor

import (
	"fmt"
	"math/rand"
	"testing"

	neigh "repro/internal/neighbor"
	"repro/internal/nn"
)

// benchConfiguration builds a periodic configuration of n atoms.
func benchConfiguration(rng *rand.Rand, n int, box float64) (coord []float64, types []int) {
	coord = make([]float64, 3*n)
	types = make([]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			coord[3*i+k] = rng.Float64() * box
		}
		types[i] = i % 3
	}
	return coord, types
}

func paperScaleDescriptor(b *testing.B, rcut float64) *Descriptor {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	d, err := New(rng, Config{
		RCut: rcut, RCutSmth: 2.0,
		EmbeddingSizes: []int{25, 50, 100}, // the paper's embedding net
		AxisNeurons:    4,
		Activation:     nn.Tanh,
		NumSpecies:     3,
		NeighborNorm:   40,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkForwardByRCut shows descriptor cost growing with the radial
// cutoff (more neighbours per atom) — the runtime-vs-rcut relationship
// the paper's implicit runtime optimization responds to.
func BenchmarkForwardByRCut(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	coord, types := benchConfiguration(rng, 160, 17.84)
	for _, rcut := range []float64{6, 8, 10, 12} {
		d := paperScaleDescriptor(b, rcut)
		b.Run(fmt.Sprintf("rcut=%v", rcut), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := d.Forward(coord, types, 17.84, i%160)
				d.Release(env)
			}
		})
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	coord, types := benchConfiguration(rng, 160, 17.84)
	d := paperScaleDescriptor(b, 8.0)
	dOut := make([]float64, d.Cfg.OutDim())
	for i := range dOut {
		dOut[i] = 1
	}
	dcoord := make([]float64, len(coord))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := d.Forward(coord, types, 17.84, i%160)
		d.Backward(env, dOut, dcoord, true)
		d.Release(env)
	}
}

// BenchmarkForwardBackwardParams is BenchmarkForwardBackward's
// training-only sibling: the ±h directional-difference passes discard
// coordinate gradients, so they run BackwardParams instead of the full
// geometry backward.
func BenchmarkForwardBackwardParams(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	coord, types := benchConfiguration(rng, 160, 17.84)
	d := paperScaleDescriptor(b, 8.0)
	dOut := make([]float64, d.Cfg.OutDim())
	for i := range dOut {
		dOut[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := d.Forward(coord, types, 17.84, i%160)
		d.BackwardParams(env, dOut)
		d.Release(env)
	}
}

// BenchmarkForwardEnvReuse is the allocation-regression benchmark for the
// descriptor hot path as the model drives it: one reusable Env, candidate
// lists from a cell list built once per configuration.  allocs/op should
// be zero in steady state.
func BenchmarkForwardEnvReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	coord, types := benchConfiguration(rng, 160, 17.84)
	d := paperScaleDescriptor(b, 6.0)
	var nl neigh.List
	nl.Build(coord, 17.84, 6.0, 0)
	var env *Env
	dOut := make([]float64, d.Cfg.OutDim())
	for i := range dOut {
		dOut[i] = 1
	}
	dcoord := make([]float64, len(coord))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % 160
		env = d.ForwardEnv(env, coord, types, 17.84, c, nl.Candidates(c))
		d.Backward(env, dOut, dcoord, true)
	}
}

func BenchmarkSwitchFunc(b *testing.B) {
	s := SwitchFunc{RMin: 2, RMax: 8}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		v, d := s.EvalDeriv(2 + float64(i%600)/100)
		sink += v + d
	}
	_ = sink
}
