package descriptor

import "repro/internal/nn"

// EnvBatch fuses the embedding-network compute of many environments —
// typically every atom of a whole worker batch of frames — into one
// forward and one backward per network, replacing hundreds of tiny
// per-atom GEMMs with a handful of tall ones.  Rows gather in
// environment order (each environment's rows contiguous, in its own
// neighbour scan order), so results are deterministic for any thread
// count; parameter gradients accumulate per fused batch rather than per
// atom, which is a relaxed reduction order relative to the
// per-environment calls — the fast training mode's documented contract.
//
// Lifecycle per sweep: ScanEnv every environment, ForwardEnvBatch once,
// then any of BackwardEnvBatchGeometry / BackwardEnvBatchParams.  The
// fused views handed to each Env (embedding outputs, upstream and input
// gradients) stay valid until the next ForwardEnvBatch on the same
// EnvBatch.  Not safe for concurrent use; all buffers are recycled
// across sweeps, so steady-state use allocates nothing.
type EnvBatch struct {
	rows  []int       // per net: fused row count
	in    [][]float64 // per net: rows×1 embedding inputs
	dy    [][]float64 // per net: rows×M1 upstream gradients
	out   [][]float64 // per net: tape-owned outputs
	ds    [][]float64 // per net: tape-owned input gradients
	tapes []*nn.BatchTape
	offs  [][]int // offs[vi][bi]: row offset of envs[vi].batches[bi]
}

func (eb *EnvBatch) ensure(nNets, nEnvs int) {
	if grow := nNets - len(eb.rows); grow > 0 {
		eb.rows = append(eb.rows, make([]int, grow)...)
		eb.in = append(eb.in, make([][]float64, grow)...)
		eb.dy = append(eb.dy, make([][]float64, grow)...)
		eb.out = append(eb.out, make([][]float64, grow)...)
		eb.ds = append(eb.ds, make([][]float64, grow)...)
		eb.tapes = append(eb.tapes, make([]*nn.BatchTape, grow)...)
	}
	if grow := nEnvs - len(eb.offs); grow > 0 {
		eb.offs = append(eb.offs, make([][]int, grow)...)
	}
}

// ForwardEnvBatch finishes a set of scanned environments (ScanEnv) with
// one fused embedding forward per touched network, then computes each
// environment's descriptor tail.  Environments keep views into the
// fused outputs; they support the fused backwards below but NOT the
// per-env Backward/BackwardParams (their per-env tapes are never
// populated on this path).
func (d *Descriptor) ForwardEnvBatch(eb *EnvBatch, envs []*Env) {
	m1 := d.Cfg.M1()
	eb.ensure(len(d.Embed), len(envs))
	for e := range d.Embed {
		eb.rows[e] = 0
		eb.in[e] = eb.in[e][:0]
	}
	for vi, env := range envs {
		offs := eb.offs[vi][:0]
		for bi := 0; bi < env.nBatches; bi++ {
			b := &env.batches[bi]
			offs = append(offs, eb.rows[b.net])
			eb.in[b.net] = append(eb.in[b.net], b.in[:b.n]...)
			eb.rows[b.net] += b.n
		}
		eb.offs[vi] = offs
	}
	for e := range d.Embed {
		if eb.rows[e] == 0 {
			continue
		}
		if eb.tapes[e] == nil {
			eb.tapes[e] = &nn.BatchTape{}
		}
		eb.out[e] = d.Embed[e].ForwardBatch(eb.tapes[e], eb.in[e], eb.rows[e])
	}
	for vi, env := range envs {
		for bi := 0; bi < env.nBatches; bi++ {
			b := &env.batches[bi]
			off := eb.offs[vi][bi]
			b.out = eb.out[b.net][off*m1 : (off+b.n)*m1]
		}
		d.finishEnv(env)
	}
}

// stageDy zeroes the fused upstream matrices and points every
// environment's batch dy at its row range, so the per-env scatter writes
// land directly in the fused layout.
func (d *Descriptor) stageDy(eb *EnvBatch, envs []*Env) {
	m1 := d.Cfg.M1()
	for e := range d.Embed {
		if eb.rows[e] > 0 {
			eb.dy[e] = ensureZeroed(eb.dy[e], eb.rows[e]*m1)
		}
	}
	for vi, env := range envs {
		for bi := 0; bi < env.nBatches; bi++ {
			b := &env.batches[bi]
			off := eb.offs[vi][bi]
			b.dy = eb.dy[b.net][off*m1 : (off+b.n)*m1]
		}
	}
}

// BackwardEnvBatchGeometry computes coordinate gradients for every
// environment with one fused input-gradient pass per network, leaving
// parameter accumulators untouched.  dOut(vi) is envs[vi]'s upstream
// dL/dD; dcoord(vi) the flat gradient target of its frame (gradients
// add).  Tape traces survive for a subsequent BackwardEnvBatchParams on
// the same sweep.
func (d *Descriptor) BackwardEnvBatchGeometry(eb *EnvBatch, envs []*Env, dOut func(vi int) []float64, dcoord func(vi int) []float64) {
	d.stageDy(eb, envs)
	for vi, env := range envs {
		d.computeDT1(env, dOut(vi))
		d.scatterUpstream(env, true)
	}
	for e := range d.Embed {
		if eb.rows[e] == 0 {
			continue
		}
		eb.ds[e] = d.Embed[e].InputGradBatch(eb.tapes[e], eb.dy[e], eb.rows[e])
	}
	for vi, env := range envs {
		for bi := 0; bi < env.nBatches; bi++ {
			b := &env.batches[bi]
			off := eb.offs[vi][bi]
			b.ds = eb.ds[b.net][off : off+b.n]
		}
		d.geometryChain(env, dcoord(vi))
	}
}

// BackwardEnvBatchParams accumulates embedding parameter gradients for
// every environment with one fused backward per network.  dOut(vi) is
// envs[vi]'s upstream dL/dD.
func (d *Descriptor) BackwardEnvBatchParams(eb *EnvBatch, envs []*Env, dOut func(vi int) []float64) {
	d.stageDy(eb, envs)
	for vi, env := range envs {
		d.computeDT1(env, dOut(vi))
		d.scatterUpstream(env, false)
	}
	for e := range d.Embed {
		if eb.rows[e] == 0 {
			continue
		}
		d.Embed[e].BackwardBatch(eb.tapes[e], eb.dy[e], eb.rows[e])
	}
}
