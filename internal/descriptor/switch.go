// Package descriptor implements the Deep Potential Smooth Edition
// (DeepPot-SE) atomic-environment descriptor of Zhang et al., the
// representation DeePMD-kit feeds its fitting network (§1).  The two
// radial cutoffs the paper tunes — rcut and rcut_smth — parameterize the
// smooth switching function here, and the embedding network maps switched
// inverse distances to learned per-neighbour features.
package descriptor

// SwitchFunc is the DeepPot-SE smooth radial weight s(r):
//
//	s(r) = 1/r                                   r  < rmin
//	s(r) = (1/r)·(u³(-6u² + 15u − 10) + 1)        rmin ≤ r < rmax,  u = (r−rmin)/(rmax−rmin)
//	s(r) = 0                                     r ≥ rmax
//
// where rmin = rcut_smth and rmax = rcut.  s is C² at both ends, which is
// what makes the learned potential-energy surface smooth and continuously
// differentiable.
type SwitchFunc struct {
	RMin, RMax float64 // rcut_smth and rcut, Å
}

// Eval returns s(r).
func (s SwitchFunc) Eval(r float64) float64 {
	v, _ := s.EvalDeriv(r)
	return v
}

// EvalDeriv returns s(r) and ds/dr.
func (s SwitchFunc) EvalDeriv(r float64) (val, deriv float64) {
	if r <= 0 {
		// The descriptor never sees r = 0 (self-interaction excluded);
		// clamp defensively.
		return 0, 0
	}
	if r < s.RMin {
		return 1 / r, -1 / (r * r)
	}
	if r >= s.RMax {
		return 0, 0
	}
	w := s.RMax - s.RMin
	u := (r - s.RMin) / w
	// p(u) = u³(-6u² + 15u − 10) + 1;  p(0)=1, p(1)=0, p'(0)=p'(1)=0.
	p := u*u*u*(-6*u*u+15*u-10) + 1
	dp := (u * u * (-30*u*u + 60*u - 30)) / w // dp/dr
	val = p / r
	deriv = dp/r - p/(r*r)
	return val, deriv
}
