package descriptor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/nn"
)

// Config parameterizes a DeepPot-SE descriptor.
type Config struct {
	// RCut is the hard radial cutoff in Å (gene rcut in the paper).
	RCut float64
	// RCutSmth is the smoothing onset in Å (gene rcut_smth).
	RCutSmth float64
	// EmbeddingSizes are the embedding-network hidden sizes; the paper
	// fixes {25, 50, 100} (§2.1.2).  The last size is the per-neighbour
	// feature width M1.
	EmbeddingSizes []int
	// AxisNeurons is M2, the number of embedding columns used for the
	// second factor of the descriptor matrix (DeePMD's axis_neuron).
	AxisNeurons int
	// Activation is the embedding-network activation (gene
	// desc_activ_func).
	Activation nn.Activation
	// NumSpecies is the number of atom types; one embedding net is built
	// per neighbour type, as in DeePMD.
	NumSpecies int
	// NeighborNorm is the fixed normalization constant standing in for
	// DeePMD's sel-size padding: environment sums are divided by it so the
	// descriptor scale is independent of the instantaneous neighbour
	// count.
	NeighborNorm float64
	// PairTypeEmbedding selects DeePMD's full embedding layout: one
	// network per (center type, neighbour type) pair instead of one per
	// neighbour type.  Costs NumSpecies× more parameters; the default
	// (false) shares embeddings across center types.
	PairTypeEmbedding bool
}

// Validate checks structural validity.
func (c *Config) Validate() error {
	if c.RCut <= 0 || c.RCutSmth < 0 || c.RCutSmth >= c.RCut {
		return fmt.Errorf("descriptor: need 0 <= rcut_smth < rcut, got %v, %v", c.RCutSmth, c.RCut)
	}
	if len(c.EmbeddingSizes) == 0 {
		return fmt.Errorf("descriptor: EmbeddingSizes empty")
	}
	if c.AxisNeurons <= 0 || c.AxisNeurons > c.EmbeddingSizes[len(c.EmbeddingSizes)-1] {
		return fmt.Errorf("descriptor: AxisNeurons %d out of range", c.AxisNeurons)
	}
	if c.NumSpecies <= 0 {
		return fmt.Errorf("descriptor: NumSpecies must be positive")
	}
	return nil
}

// M1 returns the per-neighbour embedding width.
func (c *Config) M1() int { return c.EmbeddingSizes[len(c.EmbeddingSizes)-1] }

// OutDim returns the flattened descriptor dimension M1×M2 per atom.
func (c *Config) OutDim() int { return c.M1() * c.AxisNeurons }

// Descriptor holds the embedding networks and evaluates per-atom
// DeepPot-SE feature vectors with exact coordinate gradients.
type Descriptor struct {
	Cfg    Config
	Switch SwitchFunc
	// Embed holds the embedding networks (scalar s(r) in, M1 features
	// out).  With shared embeddings there is one per neighbour type
	// (index = neighbour type); with PairTypeEmbedding there is one per
	// (center, neighbour) pair (index = center·NumSpecies + neighbour).
	Embed []*nn.MLP

	// params caches the Params() view (built by New/ShadowClone).
	params []nn.ParamGrad

	// envPool recycles Envs between Forward and Release so the
	// convenience API is allocation-free in steady state, like the
	// explicit ForwardEnv reuse path.
	envPool sync.Pool
}

// ShadowClone returns a descriptor sharing this one's embedding
// parameters but owning private gradient accumulators, so concurrent
// workers can call Backward with train=true without racing; shards are
// merged per embedding net with nn.AddGradsAndReset.
func (d *Descriptor) ShadowClone() *Descriptor {
	s := &Descriptor{Cfg: d.Cfg, Switch: d.Switch, Embed: make([]*nn.MLP, len(d.Embed))}
	for i, m := range d.Embed {
		s.Embed[i] = m.ShadowClone()
	}
	s.params = s.buildParams()
	return s
}

// embedIndex selects the embedding network for a center/neighbour type
// pair.
func (d *Descriptor) embedIndex(centerType, neighborType int) int {
	if d.Cfg.PairTypeEmbedding {
		return centerType*d.Cfg.NumSpecies + neighborType
	}
	return neighborType
}

// New builds a descriptor with randomly initialized embedding networks.
func New(rng *rand.Rand, cfg Config) (*Descriptor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NeighborNorm <= 0 {
		cfg.NeighborNorm = 16
	}
	d := &Descriptor{
		Cfg:    cfg,
		Switch: SwitchFunc{RMin: cfg.RCutSmth, RMax: cfg.RCut},
	}
	hidden := cfg.EmbeddingSizes[:len(cfg.EmbeddingSizes)-1]
	nNets := cfg.NumSpecies
	if cfg.PairTypeEmbedding {
		nNets = cfg.NumSpecies * cfg.NumSpecies
	}
	for t := 0; t < nNets; t++ {
		// Embedding net: scalar input, hidden layers, M1 outputs, all with
		// the chosen activation (DeePMD embeds with the nonlinearity on
		// the output layer too; we keep the final layer linear for
		// gradient simplicity — the hidden stack carries the
		// nonlinearity).
		d.Embed = append(d.Embed, nn.NewMLP(rng, 1, hidden, cfg.M1(), cfg.Activation))
	}
	d.params = d.buildParams()
	return d, nil
}

// neighbor is one entry of an atom's environment.
type neighbor struct {
	j        int        // neighbour atom index
	embedIdx int        // embedding-network index for this pair
	bIdx     int        // index of the neighbour's netBatch in Env.batches
	bRow     int        // row of this neighbour in its batch matrices
	d        [3]float64 // minimum-image displacement from center to neighbour
	r        float64    // |d|
	s        float64    // s(r)
	ds       float64    // ds/dr
	g        []float64  // embedding output row, len M1 (batch-tape-owned)
	rhat     [4]float64 // environment row (s, s·dx/r, s·dy/r, s·dz/r)
	dr       [4]float64 // backward scratch: dL/dR̃ rows
}

// netBatch gathers every neighbour sharing one embedding network so the
// whole group runs through the net as a single ForwardBatch/BackwardBatch
// instead of per-neighbour vector passes.  Rows keep the neighbours'
// ascending scan order, so per-net gradient accumulation follows exactly
// the order the per-neighbour path used.
type netBatch struct {
	net  int           // embedding-network index
	n    int           // active rows
	in   []float64     // n×1 inputs s(r)
	out  []float64     // n×M1 outputs (tape-owned view)
	dy   []float64     // n×M1 upstream gradients (backward scratch)
	ds   []float64     // n×1 input gradients (tape-owned view)
	tape *nn.BatchTape // reused across Forwards; all nets share one shape
}

// Env is the evaluated environment of one atom, retained for backprop.
// An Env is reusable: passing it back to ForwardEnv recycles every
// internal buffer (neighbor slots, embedding tapes, descriptor and
// backprop scratch), making steady-state evaluation allocation-free.
type Env struct {
	center int
	nbrs   []neighbor // slot pool; the first n entries are active
	n      int
	t1     []float64 // 4×M1 row-major: T1[a][m] = Σ_j R̃_j[a]·G_j[m] / norm
	out    []float64 // flattened descriptor, M1×M2

	// Per-net batches: batches[:nBatches] are active, one per embedding
	// net touched, in first-touch order.  embedBatch[net] is the batch
	// slot for a touched net.
	batches    []netBatch
	nBatches   int
	embedBatch []int

	// Backward scratch, reused across calls.
	dT1 []float64

	// Per-call bookkeeping for shard merging: which embedding nets this
	// environment touched (first-touch order) and which atoms appear.
	embedTouched []bool
	embedNets    []int
	nbrAtoms     []int
}

// Out returns the descriptor vector (owned by the Env; do not mutate).
func (e *Env) Out() []float64 { return e.out }

// Center returns the center atom index of the last ForwardEnv call.
func (e *Env) Center() int { return e.center }

// NeighborAtoms returns the indices of the atoms in the environment, in
// ascending order.  The slice is Env-owned scratch.
func (e *Env) NeighborAtoms() []int { return e.nbrAtoms }

// EmbedNets returns the indices of the embedding networks used by the
// environment, in first-touch order.  The slice is Env-owned scratch.
func (e *Env) EmbedNets() []int { return e.embedNets }

// Forward evaluates the descriptor of atom i in a configuration given by
// flat coordinates (atom-major xyz), per-atom types, and cubic box length
// (0 disables periodicity).  The returned Env supports Backward.  The Env
// comes from an internal pool; hand it back with Release once its
// outputs are no longer needed, after which repeated Forward/Release
// pairs allocate nothing.
//lint:hot
func (d *Descriptor) Forward(coord []float64, types []int, box float64, i int) *Env {
	env, _ := d.envPool.Get().(*Env)
	return d.ForwardEnv(env, coord, types, box, i, nil)
}

// Release returns an Env obtained from Forward to the descriptor's pool.
// The Env (including its Out slice) must not be used afterwards.
//lint:hot
func (d *Descriptor) Release(env *Env) {
	if env != nil {
		d.envPool.Put(env)
	}
}

// ForwardEnv is Forward with explicit scratch reuse and an optional
// candidate list.  env may be nil (a fresh one is allocated) or a
// previously returned Env whose buffers are recycled.  cand, when
// non-nil, restricts the neighbour scan to the given ascending candidate
// indices (typically from a neighbor.List built with a skin); distances
// are still measured against coord, so any candidate superset of the
// true neighbourhood yields results bit-identical to the full scan.
func (d *Descriptor) ForwardEnv(env *Env, coord []float64, types []int, box float64, i int, cand []int) *Env {
	env = d.ScanEnv(env, coord, types, box, i, cand)

	// Batched embedding: every neighbour sharing a net runs through it as
	// one ForwardBatch.  Row r of each batch is bit-identical to the old
	// per-neighbour scalar forward, so everything downstream sees the same
	// bits in the same order.
	for bi := 0; bi < env.nBatches; bi++ {
		b := &env.batches[bi]
		if b.tape == nil {
			b.tape = &nn.BatchTape{}
		}
		b.out = d.Embed[b.net].ForwardBatch(b.tape, b.in, b.n)
	}
	d.finishEnv(env)
	return env
}

// ScanEnv runs only the neighbourhood scan of ForwardEnv: it fills the
// Env's neighbour slots and per-net input batches but does not evaluate
// the embedding networks or the descriptor tail.  The fused training
// path (ForwardEnvBatch) uses it to gather many environments into one
// embedding forward per network; after ScanEnv the Env is incomplete
// until that fused pass (or ForwardEnv) finishes it.
func (d *Descriptor) ScanEnv(env *Env, coord []float64, types []int, box float64, i int, cand []int) *Env {
	if env == nil {
		env = &Env{}
	}
	env.center = i
	env.n = 0
	if len(env.embedTouched) != len(d.Embed) {
		env.embedTouched = make([]bool, len(d.Embed))
		env.embedBatch = make([]int, len(d.Embed))
	}
	for _, e := range env.embedNets {
		env.embedTouched[e] = false
	}
	env.embedNets = env.embedNets[:0]
	env.nbrAtoms = env.nbrAtoms[:0]
	env.nBatches = 0

	rc2 := d.Cfg.RCut * d.Cfg.RCut
	consider := func(j int) {
		if j == i {
			return
		}
		var dd [3]float64
		r2 := 0.0
		for k := 0; k < 3; k++ {
			dk := coord[3*j+k] - coord[3*i+k]
			if box > 0 {
				dk -= box * math.Round(dk/box)
			}
			dd[k] = dk
			r2 += dk * dk
		}
		if r2 >= rc2 || r2 == 0 {
			return
		}
		if env.n == len(env.nbrs) {
			env.nbrs = append(env.nbrs, neighbor{})
		}
		nb := &env.nbrs[env.n]
		env.n++
		r := math.Sqrt(r2)
		s, ds := d.Switch.EvalDeriv(r)
		eIdx := d.embedIndex(types[i], types[j])
		nb.j, nb.embedIdx, nb.d, nb.r, nb.s, nb.ds = j, eIdx, dd, r, s, ds
		nb.rhat[0] = s
		for k := 0; k < 3; k++ {
			nb.rhat[k+1] = s * dd[k] / r
		}
		if !env.embedTouched[eIdx] {
			env.embedTouched[eIdx] = true
			env.embedNets = append(env.embedNets, eIdx)
			if env.nBatches == len(env.batches) {
				env.batches = append(env.batches, netBatch{})
			}
			b := &env.batches[env.nBatches]
			b.net, b.n = eIdx, 0
			b.in = b.in[:0]
			env.embedBatch[eIdx] = env.nBatches
			env.nBatches++
		}
		b := &env.batches[env.embedBatch[eIdx]]
		nb.bIdx, nb.bRow = env.embedBatch[eIdx], b.n
		b.in = append(b.in, s)
		b.n++
		env.nbrAtoms = append(env.nbrAtoms, j)
	}
	if cand != nil {
		for _, j := range cand {
			consider(j)
		}
	} else {
		for j := range types {
			consider(j)
		}
	}
	return env
}

// finishEnv computes the descriptor tail — per-neighbour G views, the T1
// contraction and the output matrix — once the embedding outputs are in
// place (per-env tapes from ForwardEnv or fused views from
// ForwardEnvBatch).
func (d *Descriptor) finishEnv(env *Env) {
	m1 := d.Cfg.M1()
	for ni := 0; ni < env.n; ni++ {
		nb := &env.nbrs[ni]
		nb.g = env.batches[nb.bIdx].out[nb.bRow*m1 : (nb.bRow+1)*m1]
	}

	// T1[a][m] = Σ_j R̃_j[a] G_j[m] / norm.
	env.t1 = ensureZeroed(env.t1, 4*m1)
	t1 := env.t1
	inv := 1 / d.Cfg.NeighborNorm
	for ni := 0; ni < env.n; ni++ {
		nb := &env.nbrs[ni]
		for a := 0; a < 4; a++ {
			ra := nb.rhat[a] * inv
			row := t1[a*m1 : (a+1)*m1]
			for m, gm := range nb.g {
				row[m] += ra * gm
			}
		}
	}

	// D[m1][m2] = Σ_a T1[a][m1]·T1[a][m2],  m2 < M2.
	m2n := d.Cfg.AxisNeurons
	if cap(env.out) < m1*m2n {
		env.out = make([]float64, m1*m2n)
	}
	env.out = env.out[:m1*m2n]
	out := env.out
	for mi := 0; mi < m1; mi++ {
		for mj := 0; mj < m2n; mj++ {
			sum := 0.0
			for a := 0; a < 4; a++ {
				sum += t1[a*m1+mi] * t1[a*m1+mj]
			}
			out[mi*m2n+mj] = sum
		}
	}
}

// ensureZeroed returns buf resized to n with every element zero, reusing
// the backing array when possible.
func ensureZeroed(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Backward propagates dL/dD (flattened M1×M2) through the descriptor,
// accumulating embedding-network parameter gradients and adding coordinate
// gradients into dcoord (flat, same layout as coord).  Set train=false to
// skip parameter-gradient accumulation (force inference).
//lint:hot
func (d *Descriptor) Backward(env *Env, dOut []float64, dcoord []float64, train bool) {
	d.computeDT1(env, dOut)

	// Phase 1: per-neighbour upstream gradients, in neighbour scan order.
	// Each neighbour's dL/dG row lands in its net batch's dy matrix; the
	// R̃-row gradients are stashed on the neighbour for phase 3.
	m1 := d.Cfg.M1()
	for bi := 0; bi < env.nBatches; bi++ {
		b := &env.batches[bi]
		b.dy = ensureZeroed(b.dy, b.n*m1)
	}
	d.scatterUpstream(env, true)

	// Phase 2: through the embedding networks to their scalar inputs, one
	// batched backward per net.  Rows accumulate into each net's gradient
	// shards in ascending row order — the same subsequence order the
	// per-neighbour path used, since only a net's own neighbours ever touch
	// its accumulators.
	for bi := 0; bi < env.nBatches; bi++ {
		b := &env.batches[bi]
		net := d.Embed[b.net]
		if train {
			b.ds = net.BackwardBatch(b.tape, b.dy, b.n)
		} else {
			b.ds = net.InputGradBatch(b.tape, b.dy, b.n)
		}
	}

	d.geometryChain(env, dcoord)
}

// computeDT1 fills env.dT1 with dL/dT1[a][m] from D = T1ᵀ·T1[:, :M2] —
// the first phase of every descriptor backward.
func (d *Descriptor) computeDT1(env *Env, dOut []float64) {
	m1 := d.Cfg.M1()
	m2n := d.Cfg.AxisNeurons
	t1 := env.t1
	env.dT1 = ensureZeroed(env.dT1, 4*m1)
	dT1 := env.dT1
	for a := 0; a < 4; a++ {
		ta := t1[a*m1 : (a+1)*m1]
		da := dT1[a*m1 : (a+1)*m1]
		for mi := 0; mi < m1; mi++ {
			g := 0.0
			for mj := 0; mj < m2n; mj++ {
				g += dOut[mi*m2n+mj] * ta[mj]
			}
			da[mi] += g
		}
		for mj := 0; mj < m2n; mj++ {
			g := 0.0
			for mi := 0; mi < m1; mi++ {
				g += dOut[mi*m2n+mj] * ta[mi]
			}
			da[mj] += g
		}
	}
}

// scatterUpstream spreads env.dT1 onto each neighbour's dL/dG row (into
// its batch's pre-zeroed dy matrix), in neighbour scan order.  With
// stashDR it additionally stashes the dL/dR̃ rows the geometry chain rule
// consumes; the arithmetic of the dG scatter is identical either way.
func (d *Descriptor) scatterUpstream(env *Env, stashDR bool) {
	m1 := d.Cfg.M1()
	dT1 := env.dT1
	inv := 1 / d.Cfg.NeighborNorm
	for ni := 0; ni < env.n; ni++ {
		nb := &env.nbrs[ni]
		// dL/dG_j[m] = Σ_a dT1[a][m]·R̃_j[a]/norm
		dg := env.batches[nb.bIdx].dy[nb.bRow*m1 : (nb.bRow+1)*m1]
		for a := 0; a < 4; a++ {
			ra := nb.rhat[a] * inv
			da := dT1[a*m1 : (a+1)*m1]
			if stashDR {
				// dL/dR̃_j[a] = Σ_m dT1[a][m]·G_j[m]/norm
				sum := 0.0
				for m := 0; m < m1; m++ {
					dg[m] += da[m] * ra
					sum += da[m] * nb.g[m]
				}
				nb.dr[a] = sum * inv
			} else {
				for m := 0; m < m1; m++ {
					dg[m] += da[m] * ra
				}
			}
		}
	}
}

// geometryChain applies the chain rule from the stashed dL/dR̃ rows and
// the embedding input gradients (batch ds views) to the coordinates —
// phase 3 of the full backward, in neighbour scan order.
func (d *Descriptor) geometryChain(env *Env, dcoord []float64) {
	for ni := 0; ni < env.n; ni++ {
		nb := &env.nbrs[ni]
		dsEmbed := env.batches[nb.bIdx].ds[nb.bRow]

		// Total dL/ds: embedding path + R̃ rows.
		dLds := dsEmbed + nb.dr[0]
		for k := 0; k < 3; k++ {
			dLds += nb.dr[k+1] * nb.d[k] / nb.r
		}

		// dL/dd_k: s-dependence via ds/dr·d_k/r plus the direct d
		// dependence of rows 1..3: R̃_k = s·d_k/r.
		var dd [3]float64
		for k := 0; k < 3; k++ {
			dd[k] = dLds * nb.ds * nb.d[k] / nb.r
			for l := 0; l < 3; l++ {
				// ∂(d_l/r)/∂d_k = δ_kl/r − d_k·d_l/r³
				delta := 0.0
				if k == l {
					delta = 1
				}
				dd[k] += nb.dr[l+1] * nb.s * (delta/nb.r - nb.d[k]*nb.d[l]/(nb.r*nb.r*nb.r))
			}
		}
		for k := 0; k < 3; k++ {
			dcoord[3*nb.j+k] += dd[k]
			dcoord[3*env.center+k] -= dd[k]
		}
	}
}

// BackwardParams accumulates embedding-network parameter gradients for
// upstream gradient dOut without computing coordinate gradients — the
// training-only backward.  The parameter accumulation is bit-identical
// to Backward(env, dOut, dcoord, true): it runs the same dT1 reduction,
// per-neighbour dG scatter and batched net backwards in the same order,
// and merely skips the R̃-row stash and geometry chain rule, which touch
// no parameter accumulator.  Gradient-descent passes that discard dcoord
// (the ±h directional-difference passes of the force loss) use this to
// shed roughly a third of the descriptor backward.
//lint:hot
func (d *Descriptor) BackwardParams(env *Env, dOut []float64) {
	d.computeDT1(env, dOut)

	// Per-neighbour upstream gradients into the net batches, as in
	// Backward phase 1 minus the dL/dR̃ stash.
	m1 := d.Cfg.M1()
	for bi := 0; bi < env.nBatches; bi++ {
		b := &env.batches[bi]
		b.dy = ensureZeroed(b.dy, b.n*m1)
	}
	d.scatterUpstream(env, false)

	// Batched backward through each touched net; the input gradients are
	// not needed.
	for bi := 0; bi < env.nBatches; bi++ {
		b := &env.batches[bi]
		d.Embed[b.net].BackwardBatch(b.tape, b.dy, b.n)
	}
}

// ZeroGrad clears all embedding-network gradients.
func (d *Descriptor) ZeroGrad() {
	for _, m := range d.Embed {
		m.ZeroGrad()
	}
}

// Params returns all embedding parameters for the optimizer.  The result
// is cached at construction; callers must not append to it.
func (d *Descriptor) Params() []nn.ParamGrad {
	if d.params != nil {
		return d.params
	}
	return d.buildParams()
}

func (d *Descriptor) buildParams() []nn.ParamGrad {
	var out []nn.ParamGrad
	for _, m := range d.Embed {
		out = append(out, m.Params()...)
	}
	return out
}

// ParamCount returns the total embedding parameter count.
func (d *Descriptor) ParamCount() int {
	n := 0
	for _, m := range d.Embed {
		n += m.ParamCount()
	}
	return n
}
