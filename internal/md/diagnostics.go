package md

import (
	"fmt"
	"math"
)

// MSD accumulates mean-squared displacement over a trajectory, tracking
// unwrapped coordinates so periodic wrapping does not truncate paths.
// Molten salts are liquids: a linear MSD(t) (finite diffusion constant)
// distinguishes a proper melt from a glassy or frozen configuration, the
// basic sanity check on the training data the paper generates at 498 K.
type MSD struct {
	species  Species
	origin   []Vec3 // positions at t0, unwrapped
	unwrap   []Vec3 // current unwrapped positions
	prev     []Vec3 // previous wrapped positions, to detect jumps
	times    []float64
	values   []float64
	selected []int
	started  bool
}

// NewMSD creates an accumulator for one species (use -1 for all atoms).
func NewMSD(sp Species) *MSD { return &MSD{species: sp} }

// Start records the reference frame.
func (m *MSD) Start(sys *System) {
	m.selected = m.selected[:0]
	for i, s := range sys.Species {
		if m.species < 0 || s == m.species {
			m.selected = append(m.selected, i)
		}
	}
	n := len(m.selected)
	m.origin = make([]Vec3, n)
	m.unwrap = make([]Vec3, n)
	m.prev = make([]Vec3, n)
	for k, i := range m.selected {
		m.origin[k] = sys.Pos[i]
		m.unwrap[k] = sys.Pos[i]
		m.prev[k] = sys.Pos[i]
	}
	m.times = m.times[:0]
	m.values = m.values[:0]
	m.started = true
}

// Sample records MSD at time t (fs).  Positions are unwrapped by
// minimum-image continuity, valid when atoms move less than half a box
// between samples.
func (m *MSD) Sample(sys *System, t float64) {
	if !m.started {
		m.Start(sys)
	}
	sum := 0.0
	for k, i := range m.selected {
		d := sys.Pos[i].Sub(m.prev[k])
		d = sys.Wrap(d)
		m.unwrap[k] = m.unwrap[k].Add(d)
		m.prev[k] = sys.Pos[i]
		disp := m.unwrap[k].Sub(m.origin[k])
		sum += disp.Dot(disp)
	}
	m.times = append(m.times, t)
	m.values = append(m.values, sum/float64(len(m.selected)))
}

// Series returns the sampled (t, MSD) pairs in Å² vs fs.
func (m *MSD) Series() (times, msd []float64) { return m.times, m.values }

// DiffusionCoefficient estimates D from the Einstein relation using a
// least-squares slope over the second half of the series (the first half
// is ballistic/transient): D = slope / 6, in Å²/fs.
func (m *MSD) DiffusionCoefficient() (float64, error) {
	n := len(m.times)
	if n < 4 {
		return 0, fmt.Errorf("md: need at least 4 MSD samples, have %d", n)
	}
	lo := n / 2
	slope, err := lsSlope(m.times[lo:], m.values[lo:])
	if err != nil {
		return 0, err
	}
	return slope / 6, nil
}

// lsSlope is the ordinary least-squares slope of y on x.
func lsSlope(x, y []float64) (float64, error) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("md: bad series for slope")
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("md: degenerate time series")
	}
	return (n*sxy - sx*sy) / den, nil
}

// VACF accumulates the normalized velocity autocorrelation function from
// a stored reference frame: C(t) = ⟨v(0)·v(t)⟩ / ⟨v(0)·v(0)⟩.
type VACF struct {
	v0     []Vec3
	norm   float64
	times  []float64
	values []float64
}

// Start stores the reference velocities.
func (v *VACF) Start(sys *System) {
	v.v0 = append(v.v0[:0], sys.Vel...)
	v.norm = 0
	for _, vel := range v.v0 {
		v.norm += vel.Dot(vel)
	}
	v.times = v.times[:0]
	v.values = v.values[:0]
}

// Sample records C(t).
func (v *VACF) Sample(sys *System, t float64) {
	if v.v0 == nil {
		v.Start(sys)
	}
	c := 0.0
	for i, vel := range sys.Vel {
		c += vel.Dot(v.v0[i])
	}
	if v.norm > 0 {
		c /= v.norm
	}
	v.times = append(v.times, t)
	v.values = append(v.values, c)
}

// Series returns the sampled (t, C) pairs.
func (v *VACF) Series() (times, c []float64) { return v.times, v.values }

// DecayTime returns the first time at which C(t) falls below 1/e, or NaN
// if it never does within the sampled window.
func (v *VACF) DecayTime() float64 {
	const inv = 1 / math.E
	for i, c := range v.values {
		if c < inv {
			return v.times[i]
		}
	}
	return math.NaN()
}
