package md

import "math"

// NoseHoover is a single-chain Nosé–Hoover thermostat: a deterministic
// canonical-ensemble thermostat with its own dynamical friction variable,
// the standard choice for production NVT molecular dynamics (Berendsen
// rescaling does not sample the canonical ensemble; Langevin destroys
// dynamics).  Q is the thermostat "mass" in eV·fs²; larger Q couples more
// weakly.
type NoseHoover struct {
	T float64 // target temperature, K
	Q float64 // thermostat inertia, eV·fs²
	// xi is the friction coefficient (1/fs), evolved by the thermostat's
	// own equation of motion.
	xi float64
}

// NewNoseHoover builds a thermostat with a relaxation time tau (fs): the
// conventional parameterization Q = N_dof·k_B·T·τ².
func NewNoseHoover(T, tau float64, nAtoms int) *NoseHoover {
	dof := float64(3*nAtoms - 3)
	return &NoseHoover{T: T, Q: dof * BoltzmannEV * T * tau * tau}
}

// Xi exposes the current friction value (diagnostics).
func (nh *NoseHoover) Xi() float64 { return nh.xi }

// Apply implements Thermostat with a first-order splitting: update xi
// from the instantaneous kinetic energy, then scale velocities by
// exp(−xi·dt).
func (nh *NoseHoover) Apply(sys *System, dt float64) {
	dof := float64(3*sys.N() - 3)
	if dof <= 0 || nh.Q <= 0 {
		return
	}
	ke := sys.KineticEnergy()
	target := 0.5 * dof * BoltzmannEV * nh.T
	// dxi/dt = (2·KE − 2·KE_target) / Q
	nh.xi += dt * (2*ke - 2*target) / nh.Q
	scale := math.Exp(-nh.xi * dt)
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Scale(scale)
	}
}
