// Package md is a classical molecular-dynamics engine for molten-salt
// systems.  It substitutes for the CP2K first-principles MD the paper used
// to generate DeePMD training data (§2.1.3): the trainer only needs atomic
// configurations labeled with consistent energies and forces from *some*
// reference potential, and a Born–Mayer–Huggins + damped shifted-force
// Coulomb potential provides exactly that at laptop cost.
//
// Units follow the paper: length in Å, energy in eV, force in eV/Å, mass
// in amu, time in fs, temperature in K.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Physical constants in the Å/eV/amu/fs unit system.
const (
	// CoulombK is e²/(4πε₀) in eV·Å.
	CoulombK = 14.399645
	// BoltzmannEV is k_B in eV/K.
	BoltzmannEV = 8.617333262e-5
	// massTimeFactor converts acceleration: a [Å/fs²] = F [eV/Å] / m [amu] × this.
	// 1 eV/(Å·amu) = 9.64853e-3 Å/fs².
	massTimeFactor = 9.64853e-3
)

// Species identifies an atom type in the molten-salt mixture.
type Species int

// The species of the paper's system: a molten aluminum-chloride /
// potassium-chloride mixture (66.7 % AlCl₃, 33.3 % KCl).
const (
	Al Species = iota
	K
	Cl
	NumSpecies
)

// String returns the element symbol.
func (s Species) String() string {
	switch s {
	case Al:
		return "Al"
	case K:
		return "K"
	case Cl:
		return "Cl"
	}
	return fmt.Sprintf("Species(%d)", int(s))
}

// Mass returns the atomic mass in amu.
func (s Species) Mass() float64 {
	switch s {
	case Al:
		return 26.9815
	case K:
		return 39.0983
	case Cl:
		return 35.4530
	}
	panic("md: unknown species")
}

// Charge returns the effective partial charge in units of e.  Formal
// charges (+3, +1, −1) are scaled by 0.7, a standard stabilization for
// rigid-ion molten-salt models.
func (s Species) Charge() float64 {
	const scale = 0.7
	switch s {
	case Al:
		return +3 * scale
	case K:
		return +1 * scale
	case Cl:
		return -1 * scale
	}
	panic("md: unknown species")
}

// Vec3 is a 3-vector.
type Vec3 [3]float64

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a[0], s * a[1], s * a[2]} }

// Dot returns a·b.
func (a Vec3) Dot(b Vec3) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// System is a periodic cubic simulation cell of atoms.
type System struct {
	Box     float64 // cubic box side length, Å
	Species []Species
	Pos     []Vec3 // positions, Å
	Vel     []Vec3 // velocities, Å/fs
	Frc     []Vec3 // forces, eV/Å (filled by Potential.Compute)
	PotEng  float64
	// Virial is the scalar pair virial Σ_pairs (−dU/dr)·r in eV, filled
	// by pair potentials during Compute; the NN potential leaves it 0.
	Virial float64
}

// N returns the atom count.
func (s *System) N() int { return len(s.Species) }

// PaperComposition returns the species list of the paper's 160-atom
// system: 66.7 % AlCl₃ and 33.3 % KCl by formula unit, i.e. 32 AlCl₃ + 16
// KCl = 32 Al + 16 K + 112 Cl, which is charge-neutral.
func PaperComposition() []Species {
	var sp []Species
	for i := 0; i < 32; i++ {
		sp = append(sp, Al)
	}
	for i := 0; i < 16; i++ {
		sp = append(sp, K)
	}
	for i := 0; i < 112; i++ {
		sp = append(sp, Cl)
	}
	return sp
}

// NewSystem places the given species on a jittered cubic lattice inside a
// box of side length box, and draws Maxwell–Boltzmann velocities at
// temperature T.  Lattice seeding avoids the catastrophic overlaps random
// placement would produce.
func NewSystem(rng *rand.Rand, species []Species, box, temperature float64) *System {
	n := len(species)
	s := &System{
		Box:     box,
		Species: append([]Species(nil), species...),
		Pos:     make([]Vec3, n),
		Vel:     make([]Vec3, n),
		Frc:     make([]Vec3, n),
	}
	// Smallest cubic lattice that fits n sites.
	side := int(math.Ceil(math.Cbrt(float64(n))))
	a := box / float64(side)
	perm := rng.Perm(side * side * side)
	for i := 0; i < n; i++ {
		cell := perm[i]
		x := cell % side
		y := (cell / side) % side
		z := cell / (side * side)
		jitter := func() float64 { return (rng.Float64() - 0.5) * 0.1 * a }
		s.Pos[i] = Vec3{
			(float64(x)+0.5)*a + jitter(),
			(float64(y)+0.5)*a + jitter(),
			(float64(z)+0.5)*a + jitter(),
		}
	}
	s.SetTemperature(rng, temperature)
	return s
}

// SetTemperature draws fresh Maxwell–Boltzmann velocities at T and removes
// the center-of-mass drift.
func (s *System) SetTemperature(rng *rand.Rand, T float64) {
	var pTot Vec3
	var mTot float64
	for i := range s.Vel {
		m := s.Species[i].Mass()
		// σ_v = sqrt(k_B T / m) in Å/fs: k_B T [eV] → velocity² scale via
		// massTimeFactor (Å²/fs² per eV/amu).
		sigma := math.Sqrt(BoltzmannEV * T / m * massTimeFactor)
		v := Vec3{rng.NormFloat64() * sigma, rng.NormFloat64() * sigma, rng.NormFloat64() * sigma}
		s.Vel[i] = v
		pTot = pTot.Add(v.Scale(m))
		mTot += m
	}
	drift := pTot.Scale(1 / mTot)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(drift)
	}
}

// KineticEnergy returns the total kinetic energy in eV.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i, v := range s.Vel {
		ke += 0.5 * s.Species[i].Mass() * v.Dot(v) / massTimeFactor
	}
	return ke
}

// Temperature returns the instantaneous kinetic temperature in K.
func (s *System) Temperature() float64 {
	dof := float64(3*s.N() - 3)
	if dof <= 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (dof * BoltzmannEV)
}

// Wrap applies the minimum-image convention to displacement d.
func (s *System) Wrap(d Vec3) Vec3 {
	for k := 0; k < 3; k++ {
		d[k] -= s.Box * math.Round(d[k]/s.Box)
	}
	return d
}

// WrapIntoBox maps every position into [0, Box).
func (s *System) WrapIntoBox() {
	for i := range s.Pos {
		for k := 0; k < 3; k++ {
			s.Pos[i][k] -= s.Box * math.Floor(s.Pos[i][k]/s.Box)
		}
	}
}

// Displacement returns the minimum-image vector from atom i to atom j.
func (s *System) Displacement(i, j int) Vec3 {
	return s.Wrap(s.Pos[j].Sub(s.Pos[i]))
}
