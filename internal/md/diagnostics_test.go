package md

import (
	"math"
	"math/rand"
	"testing"
)

func TestMSDGrowsInLiquid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := NewSystem(rng, PaperComposition(), 17.84, 900) // hot melt diffuses fast
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Langevin{T: 900, Gamma: 0.01, Rng: rng}, 0.5)
	it.Run(sys, 500, 0, nil) // equilibrate

	msd := NewMSD(-1)
	msd.Start(sys)
	step := 0
	it.Run(sys, 1000, 50, func(s int) {
		step = s
		msd.Sample(sys, float64(s)*0.5)
	})
	_ = step
	times, values := msd.Series()
	if len(times) != 20 {
		t.Fatalf("got %d samples, want 20", len(times))
	}
	if values[len(values)-1] <= values[0] {
		t.Errorf("MSD did not grow: %v -> %v", values[0], values[len(values)-1])
	}
	d, err := msd.DiffusionCoefficient()
	if err != nil {
		t.Fatalf("DiffusionCoefficient: %v", err)
	}
	if d <= 0 {
		t.Errorf("diffusion coefficient %v, want positive (liquid)", d)
	}
}

func TestMSDZeroWithoutMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys := NewSystem(rng, []Species{K, Cl}, 8, 300)
	msd := NewMSD(-1)
	msd.Start(sys)
	msd.Sample(sys, 1)
	msd.Sample(sys, 2)
	_, values := msd.Series()
	for _, v := range values {
		if v != 0 {
			t.Errorf("MSD %v for frozen system, want 0", v)
		}
	}
}

func TestMSDPerSpeciesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := NewSystem(rng, []Species{Al, K, Cl, Cl}, 8, 300)
	msd := NewMSD(Cl)
	msd.Start(sys)
	if len(msd.selected) != 2 {
		t.Errorf("selected %d atoms, want 2 Cl", len(msd.selected))
	}
}

func TestMSDUnwrapsAcrossBoundary(t *testing.T) {
	// An atom crossing the periodic boundary must accumulate displacement
	// rather than jump backwards.
	sys := &System{Box: 10, Species: []Species{K},
		Pos: []Vec3{{9.8, 5, 5}}, Vel: make([]Vec3, 1), Frc: make([]Vec3, 1)}
	msd := NewMSD(-1)
	msd.Start(sys)
	sys.Pos[0] = Vec3{0.2, 5, 5} // crossed the boundary: moved +0.4, not -9.6
	msd.Sample(sys, 1)
	_, values := msd.Series()
	if math.Abs(values[0]-0.16) > 1e-9 {
		t.Errorf("MSD after boundary crossing = %v, want 0.16", values[0])
	}
}

func TestDiffusionNeedsSamples(t *testing.T) {
	msd := NewMSD(-1)
	if _, err := msd.DiffusionCoefficient(); err == nil {
		t.Error("empty MSD produced a diffusion coefficient")
	}
}

func TestVACFStartsAtOneAndDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, nil, 0.5) // NVE so velocities decorrelate naturally
	pot.Compute(sys)

	var vacf VACF
	vacf.Start(sys)
	vacf.Sample(sys, 0)
	it.Run(sys, 400, 20, func(s int) { vacf.Sample(sys, float64(s)*0.5) })

	_, c := vacf.Series()
	if math.Abs(c[0]-1) > 1e-12 {
		t.Errorf("C(0) = %v, want 1", c[0])
	}
	// In a dense liquid the VACF decays well below 1 within ~200 fs.
	if last := c[len(c)-1]; last > 0.5 {
		t.Errorf("C(t_end) = %v, want decayed", last)
	}
	if dt := vacf.DecayTime(); math.IsNaN(dt) || dt <= 0 {
		t.Errorf("DecayTime = %v, want positive", dt)
	}
}

func TestLsSlopeKnown(t *testing.T) {
	s, err := lsSlope([]float64{0, 1, 2, 3}, []float64{1, 3, 5, 7})
	if err != nil || math.Abs(s-2) > 1e-12 {
		t.Errorf("slope = %v, %v; want 2", s, err)
	}
	if _, err := lsSlope([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestNoseHooverDrivesTemperature(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	sys := NewSystem(rng, PaperComposition(), 17.84, 200)
	pot := NewPaperBMH(5.0)
	nh := NewNoseHoover(498, 50, sys.N())
	it := NewIntegrator(pot, nh, 0.5)
	it.Run(sys, 3000, 0, nil)
	T := sys.Temperature()
	if math.Abs(T-498) > 120 {
		t.Errorf("Nose-Hoover temperature %v, want ≈498", T)
	}
	if nh.Xi() == 0 {
		t.Error("thermostat friction never moved")
	}
}

func TestNoseHooverNoDOF(t *testing.T) {
	sys := &System{Box: 5, Species: []Species{K}, Pos: make([]Vec3, 1), Vel: make([]Vec3, 1), Frc: make([]Vec3, 1)}
	nh := NewNoseHoover(300, 50, 1)
	nh.Apply(sys, 0.5) // must not panic or NaN with zero DOF
	if math.IsNaN(nh.Xi()) {
		t.Error("xi became NaN")
	}
}

func TestPressureIdealGasLimit(t *testing.T) {
	// Without interactions the virial is zero and P = N·k_B·T_kin/V
	// (T_kin from the actual kinetic energy, COM removed).
	rng := rand.New(rand.NewSource(30))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	sys.Virial = 0
	vol := sys.Box * sys.Box * sys.Box
	want := 2 * sys.KineticEnergy() / (3 * vol)
	if got := Pressure(sys); math.Abs(got-want) > 1e-15 {
		t.Errorf("ideal-gas pressure %v, want %v", got, want)
	}
}

func TestPressureOfDenseMeltExceedsIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Berendsen{T: 498, Tau: 20}, 0.5)
	it.Run(sys, 500, 0, nil)
	pot.Compute(sys)
	vol := sys.Box * sys.Box * sys.Box
	ideal := 2 * sys.KineticEnergy() / (3 * vol)
	p := Pressure(sys)
	if p <= ideal {
		t.Errorf("dense melt pressure %v not above ideal %v (repulsion must dominate)", p, ideal)
	}
	if g := PressureGPa(sys); g <= 0 || math.IsNaN(g) {
		t.Errorf("PressureGPa = %v", g)
	}
}

func TestVirialMatchesVolumeDerivative(t *testing.T) {
	// W = -3V·dU/dV under uniform scaling: check against a finite
	// difference of the potential energy with scaled coordinates and box.
	rng := rand.New(rand.NewSource(32))
	sys := NewSystem(rng, PaperComposition(), 17.84, 300)
	pot := NewPaperBMH(5.0)
	pot.Compute(sys)
	w := sys.Virial

	energyAtScale := func(s float64) float64 {
		scaled := &System{Box: sys.Box * s, Species: sys.Species,
			Pos: make([]Vec3, sys.N()), Vel: make([]Vec3, sys.N()), Frc: make([]Vec3, sys.N())}
		for i, p := range sys.Pos {
			scaled.Pos[i] = p.Scale(s)
		}
		// Same reduced configuration, scaled cutoff keeps the neighbour
		// list identical so only pair distances change.
		p2 := NewPaperBMH(5.0 * s)
		// Rebuild shifted-force constants for the scaled cutoff — they
		// differ, so instead compare with the same potential but only for
		// small scalings where cutoff crossings are negligible.
		_ = p2
		pot.Compute(scaled)
		return scaled.PotEng
	}
	const h = 1e-5
	up := energyAtScale(1 + h)
	dn := energyAtScale(1 - h)
	dUdlnV := (up - dn) / (2 * h) / 3 // dU/d(ln s) / 3 = V·dU/dV
	if math.Abs(-3*dUdlnV-w) > 0.05*(1+math.Abs(w)) {
		t.Errorf("virial %v vs -3V·dU/dV %v", w, -3*dUdlnV)
	}
}
