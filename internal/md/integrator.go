package md

import (
	"math"
	"math/rand"
)

// Thermostat rescales or perturbs velocities to steer temperature.
type Thermostat interface {
	// Apply adjusts velocities after the velocity-Verlet step.
	Apply(sys *System, dt float64)
}

// NVE is the no-thermostat (microcanonical) choice.
type NVE struct{}

// Apply implements Thermostat as a no-op.
func (NVE) Apply(*System, float64) {}

// Berendsen is the weak-coupling thermostat of Berendsen et al.: velocity
// scaling toward target temperature T with time constant Tau.
type Berendsen struct {
	T   float64 // target temperature, K
	Tau float64 // coupling time constant, fs
}

// Apply implements Thermostat.
func (b Berendsen) Apply(sys *System, dt float64) {
	cur := sys.Temperature()
	if cur <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dt/b.Tau*(b.T/cur-1))
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Scale(lambda)
	}
}

// Langevin is a stochastic thermostat: velocities are damped with friction
// Gamma (1/fs) and kicked with matched Gaussian noise, yielding canonical
// sampling.
type Langevin struct {
	T     float64 // target temperature, K
	Gamma float64 // friction coefficient, 1/fs
	Rng   *rand.Rand
}

// Apply implements Thermostat.
func (l Langevin) Apply(sys *System, dt float64) {
	c1 := math.Exp(-l.Gamma * dt)
	for i := range sys.Vel {
		m := sys.Species[i].Mass()
		sigma := math.Sqrt(BoltzmannEV * l.T / m * massTimeFactor * (1 - c1*c1))
		for k := 0; k < 3; k++ {
			sys.Vel[i][k] = c1*sys.Vel[i][k] + sigma*l.Rng.NormFloat64()
		}
	}
}

// Integrator advances a system with velocity Verlet under a potential and
// optional thermostat.
type Integrator struct {
	Pot    Potential
	Thermo Thermostat
	Dt     float64 // timestep, fs
}

// NewIntegrator builds an integrator; a nil thermostat means NVE.
func NewIntegrator(pot Potential, thermo Thermostat, dt float64) *Integrator {
	if thermo == nil {
		thermo = NVE{}
	}
	return &Integrator{Pot: pot, Thermo: thermo, Dt: dt}
}

// Step advances the system by one timestep.  Forces must be valid on
// entry (call Pot.Compute once before the first Step).
func (it *Integrator) Step(sys *System) {
	dt := it.Dt
	half := 0.5 * dt
	// v(t+dt/2) = v(t) + a(t)·dt/2 ; x(t+dt) = x(t) + v(t+dt/2)·dt
	for i := range sys.Pos {
		invM := massTimeFactor / sys.Species[i].Mass()
		sys.Vel[i] = sys.Vel[i].Add(sys.Frc[i].Scale(half * invM))
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
	sys.WrapIntoBox()
	it.Pot.Compute(sys)
	// v(t+dt) = v(t+dt/2) + a(t+dt)·dt/2
	for i := range sys.Vel {
		invM := massTimeFactor / sys.Species[i].Mass()
		sys.Vel[i] = sys.Vel[i].Add(sys.Frc[i].Scale(half * invM))
	}
	it.Thermo.Apply(sys, dt)
}

// Run advances nSteps steps, invoking observe (if non-nil) every
// observeEvery steps with the current step index.
func (it *Integrator) Run(sys *System, nSteps, observeEvery int, observe func(step int)) {
	it.Pot.Compute(sys)
	for s := 1; s <= nSteps; s++ {
		it.Step(sys)
		if observe != nil && observeEvery > 0 && s%observeEvery == 0 {
			observe(s)
		}
	}
}

// TotalEnergy returns kinetic + potential energy (forces/energy must be
// current).
func TotalEnergy(sys *System) float64 { return sys.KineticEnergy() + sys.PotEng }

// RDF accumulates the radial distribution function g(r) between two
// species over observed frames; a standard structural diagnostic for
// melts, used by the data-generation example to sanity-check the liquid.
type RDF struct {
	SpA, SpB Species
	RMax     float64
	Bins     []float64
	frames   int
	nA, nB   int
}

// NewRDF creates an RDF accumulator with the given bin count.
func NewRDF(a, b Species, rmax float64, bins int) *RDF {
	return &RDF{SpA: a, SpB: b, RMax: rmax, Bins: make([]float64, bins)}
}

// Accumulate adds one frame's pair histogram.
func (r *RDF) Accumulate(sys *System) {
	dr := r.RMax / float64(len(r.Bins))
	r.nA, r.nB = 0, 0
	for i := range sys.Species {
		if sys.Species[i] == r.SpA {
			r.nA++
		}
		if sys.Species[i] == r.SpB {
			r.nB++
		}
	}
	for i := 0; i < sys.N(); i++ {
		if sys.Species[i] != r.SpA {
			continue
		}
		for j := 0; j < sys.N(); j++ {
			if i == j || sys.Species[j] != r.SpB {
				continue
			}
			d := sys.Displacement(i, j)
			dist := d.Norm()
			if dist < r.RMax {
				r.Bins[int(dist/dr)]++
			}
		}
	}
	r.frames++
}

// Result returns bin centers and normalized g(r).
func (r *RDF) Result(sys *System) (centers, g []float64) {
	dr := r.RMax / float64(len(r.Bins))
	vol := sys.Box * sys.Box * sys.Box
	rhoB := float64(r.nB) / vol
	centers = make([]float64, len(r.Bins))
	g = make([]float64, len(r.Bins))
	for k := range r.Bins {
		rin := float64(k) * dr
		rout := rin + dr
		shell := 4.0 / 3.0 * math.Pi * (rout*rout*rout - rin*rin*rin)
		centers[k] = rin + dr/2
		if r.frames > 0 && r.nA > 0 && rhoB > 0 {
			g[k] = r.Bins[k] / (float64(r.frames) * float64(r.nA) * shell * rhoB)
		}
	}
	return centers, g
}

// Pressure returns the instantaneous pressure in eV/Å³ from the virial
// theorem: P = (2·KE + W) / (3V), with W the scalar pair virial.  The
// forces/virial must be current.
func Pressure(sys *System) float64 {
	vol := sys.Box * sys.Box * sys.Box
	if vol <= 0 {
		return 0
	}
	return (2*sys.KineticEnergy() + sys.Virial) / (3 * vol)
}

// PressureGPa converts Pressure's eV/Å³ to gigapascals.
func PressureGPa(sys *System) float64 {
	const eVA3ToGPa = 160.21766 // 1 eV/Å³ in GPa
	return Pressure(sys) * eVA3ToGPa
}
