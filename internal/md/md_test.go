package md

import (
	"math"
	"math/rand"
	"testing"
)

func smallSystem(t *testing.T, seed int64) (*System, *BMH) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// A small neutral mixture: 4 Al, 2 K, 14 Cl = 20 atoms.
	var sp []Species
	for i := 0; i < 4; i++ {
		sp = append(sp, Al)
	}
	for i := 0; i < 2; i++ {
		sp = append(sp, K)
	}
	for i := 0; i < 14; i++ {
		sp = append(sp, Cl)
	}
	sys := NewSystem(rng, sp, 9.0, 498)
	pot := NewPaperBMH(4.0)
	if err := pot.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return sys, pot
}

func TestPaperCompositionNeutralAnd160(t *testing.T) {
	sp := PaperComposition()
	if len(sp) != 160 {
		t.Fatalf("composition has %d atoms, want 160", len(sp))
	}
	q := 0.0
	counts := map[Species]int{}
	for _, s := range sp {
		q += s.Charge()
		counts[s]++
	}
	if math.Abs(q) > 1e-9 {
		t.Errorf("net charge = %v, want 0", q)
	}
	if counts[Al] != 32 || counts[K] != 16 || counts[Cl] != 112 {
		t.Errorf("counts = %v, want Al:32 K:16 Cl:112", counts)
	}
}

func TestSpeciesProperties(t *testing.T) {
	if Al.String() != "Al" || K.String() != "K" || Cl.String() != "Cl" {
		t.Error("species names wrong")
	}
	if Al.Mass() <= 0 || K.Mass() <= 0 || Cl.Mass() <= 0 {
		t.Error("non-positive mass")
	}
	if Al.Charge() <= 0 || K.Charge() <= 0 || Cl.Charge() >= 0 {
		t.Error("charge signs wrong")
	}
}

func TestMinimumImage(t *testing.T) {
	sys := &System{Box: 10}
	d := sys.Wrap(Vec3{9, -9, 4})
	want := Vec3{-1, 1, 4}
	for k := 0; k < 3; k++ {
		if math.Abs(d[k]-want[k]) > 1e-12 {
			t.Errorf("Wrap[%d] = %v, want %v", k, d[k], want[k])
		}
	}
}

func TestInitialTemperature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	T := sys.Temperature()
	if math.Abs(T-498) > 120 {
		t.Errorf("initial temperature %v K, want ≈498", T)
	}
	// Center-of-mass momentum must be (near) zero.
	var p Vec3
	for i, v := range sys.Vel {
		p = p.Add(v.Scale(sys.Species[i].Mass()))
	}
	if p.Norm() > 1e-9 {
		t.Errorf("net momentum %v, want 0", p.Norm())
	}
}

func TestForcesMatchFiniteDifference(t *testing.T) {
	sys, pot := smallSystem(t, 4)
	pot.Compute(sys)
	const h = 1e-6
	pos := make([]Vec3, sys.N())
	copy(pos, sys.Pos)
	for i := 0; i < sys.N(); i += 3 { // sample atoms
		for k := 0; k < 3; k++ {
			pos[i][k] += h
			ep := pot.PotentialEnergyAt(sys, pos)
			pos[i][k] -= 2 * h
			em := pot.PotentialEnergyAt(sys, pos)
			pos[i][k] += h
			fd := -(ep - em) / (2 * h)
			if math.Abs(fd-sys.Frc[i][k]) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("force[%d][%d] = %v, finite diff %v", i, k, sys.Frc[i][k], fd)
			}
		}
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	sys, pot := smallSystem(t, 5)
	pot.Compute(sys)
	var sum Vec3
	for _, f := range sys.Frc {
		sum = sum.Add(f)
	}
	if sum.Norm() > 1e-9 {
		t.Errorf("net force %v, want 0 (Newton's third law)", sum.Norm())
	}
}

func TestCellListMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0) // 17.84/5 = 3 cells: cell list active

	pot.SetBruteForce(true)
	pot.Compute(sys)
	eN2 := sys.PotEng
	fN2 := make([]Vec3, sys.N())
	copy(fN2, sys.Frc)

	pot.SetBruteForce(false)
	pot.Compute(sys)
	if math.Abs(sys.PotEng-eN2) > 1e-8*(1+math.Abs(eN2)) {
		t.Errorf("cell-list energy %v != brute-force %v", sys.PotEng, eN2)
	}
	for i := range fN2 {
		if sys.Frc[i].Sub(fN2[i]).Norm() > 1e-8 {
			t.Errorf("cell-list force[%d] %v != brute-force %v", i, sys.Frc[i], fN2[i])
		}
	}
}

func TestShiftedForceContinuousAtCutoff(t *testing.T) {
	pot := NewPaperBMH(6.0)
	u, dudr := pot.PairEnergyForce(K, Cl, 6.0-1e-9)
	// BMH exp and dispersion are tiny at 6 Å but not shifted; the Coulomb
	// part must vanish.  Allow the residual short-range tail.
	uC := CoulombK * K.Charge() * Cl.Charge() * (1/5.999999999 - 1/6.0 + (5.999999999-6.0)/36.0)
	_ = uC
	if math.Abs(u) > 0.02 {
		t.Errorf("pair energy at cutoff = %v, want ≈0 (continuous)", u)
	}
	if math.Abs(dudr) > 0.02 {
		t.Errorf("pair force at cutoff = %v, want ≈0 (continuous)", dudr)
	}
}

func TestNVEEnergyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys := NewSystem(rng, PaperComposition(), 17.84, 300)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, nil, 0.5)

	// Equilibrate briefly with a thermostat to remove lattice strain.
	eq := NewIntegrator(pot, Berendsen{T: 300, Tau: 50}, 0.5)
	eq.Run(sys, 200, 0, nil)

	pot.Compute(sys)
	e0 := TotalEnergy(sys)
	var maxDrift float64
	it.Run(sys, 400, 50, func(step int) {
		drift := math.Abs(TotalEnergy(sys) - e0)
		if drift > maxDrift {
			maxDrift = drift
		}
	})
	// Energy drift should be a tiny fraction of the total energy scale.
	scale := math.Abs(e0)
	if scale < 1 {
		scale = 1
	}
	if maxDrift/scale > 0.02 {
		t.Errorf("NVE energy drift %v (%.2f%% of |E0|=%v)", maxDrift, 100*maxDrift/scale, e0)
	}
}

func TestBerendsenDrivesTemperature(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sys := NewSystem(rng, PaperComposition(), 17.84, 100)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Berendsen{T: 498, Tau: 10}, 0.5)
	it.Run(sys, 2000, 0, nil)
	T := sys.Temperature()
	if math.Abs(T-498) > 100 {
		t.Errorf("temperature after Berendsen run = %v, want ≈498", T)
	}
}

func TestLangevinDrivesTemperature(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sys := NewSystem(rng, PaperComposition(), 17.84, 100)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Langevin{T: 498, Gamma: 0.05, Rng: rng}, 0.5)
	it.Run(sys, 800, 0, nil)
	T := sys.Temperature()
	if math.Abs(T-498) > 150 {
		t.Errorf("temperature after Langevin run = %v, want ≈498", T)
	}
}

func TestPositionsStayWrapped(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Berendsen{T: 498, Tau: 50}, 0.5)
	it.Run(sys, 100, 0, nil)
	for i, p := range sys.Pos {
		for k := 0; k < 3; k++ {
			if p[k] < 0 || p[k] >= sys.Box {
				t.Fatalf("atom %d coordinate %d out of box: %v", i, k, p[k])
			}
		}
	}
}

func TestRDFHasExcludedCore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Berendsen{T: 498, Tau: 25}, 0.5)
	it.Run(sys, 300, 0, nil)

	rdf := NewRDF(Al, Cl, 6.0, 60)
	it.Run(sys, 200, 20, func(step int) { rdf.Accumulate(sys) })
	centers, g := rdf.Result(sys)
	// No Al-Cl pairs inside the hard core (< 1.2 Å).
	for k, c := range centers {
		if c < 1.2 && g[k] > 0 {
			t.Errorf("g(%v Å) = %v inside excluded core", c, g[k])
		}
	}
	// Some structure must exist beyond the core.
	var peak float64
	for _, v := range g {
		if v > peak {
			peak = v
		}
	}
	if peak < 0.5 {
		t.Errorf("RDF peak %v, want > 0.5 (liquid structure)", peak)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-12 {
		t.Error("Norm wrong")
	}
}

func TestKineticEnergyMatchesTemperatureDef(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sys := NewSystem(rng, PaperComposition(), 17.84, 400)
	ke := sys.KineticEnergy()
	T := sys.Temperature()
	dof := float64(3*sys.N() - 3)
	if math.Abs(ke-0.5*dof*BoltzmannEV*T) > 1e-9 {
		t.Error("KineticEnergy and Temperature definitions inconsistent")
	}
}
