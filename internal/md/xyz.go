package md

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteXYZ appends one frame in extended-XYZ format: atom count, a
// comment line carrying the cubic lattice and the potential energy, then
// one "Symbol x y z fx fy fz" line per atom.  The format is readable by
// standard visualization tools (OVITO, VMD, ASE) — how trajectories from
// this engine get inspected.
func WriteXYZ(w io.Writer, sys *System) error {
	if _, err := fmt.Fprintf(w, "%d\n", sys.N()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"Lattice=\"%g 0 0 0 %g 0 0 0 %g\" Properties=species:S:1:pos:R:3:forces:R:3 energy=%.10g\n",
		sys.Box, sys.Box, sys.Box, sys.PotEng)
	if err != nil {
		return err
	}
	for i := 0; i < sys.N(); i++ {
		p, f := sys.Pos[i], sys.Frc[i]
		_, err := fmt.Fprintf(w, "%-2s %15.8f %15.8f %15.8f %15.8f %15.8f %15.8f\n",
			sys.Species[i], p[0], p[1], p[2], f[0], f[1], f[2])
		if err != nil {
			return err
		}
	}
	return nil
}

// XYZFrame is one parsed extended-XYZ frame.
type XYZFrame struct {
	Species []Species
	Pos     []Vec3
	Frc     []Vec3
	Box     float64
	Energy  float64
}

// ReadXYZ parses all frames from an extended-XYZ stream written by
// WriteXYZ.
func ReadXYZ(r io.Reader) ([]XYZFrame, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []XYZFrame
	for sc.Scan() {
		countLine := strings.TrimSpace(sc.Text())
		if countLine == "" {
			continue
		}
		n, err := strconv.Atoi(countLine)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("md: bad xyz atom count %q", countLine)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("md: xyz truncated before comment line")
		}
		frame := XYZFrame{}
		comment := sc.Text()
		frame.Box, frame.Energy, err = parseXYZComment(comment)
		if err != nil {
			return nil, err
		}
		for a := 0; a < n; a++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("md: xyz truncated at atom %d", a)
			}
			fields := strings.Fields(sc.Text())
			if len(fields) < 7 {
				return nil, fmt.Errorf("md: xyz atom line has %d fields, want 7", len(fields))
			}
			sp, err := SpeciesBySymbol(fields[0])
			if err != nil {
				return nil, err
			}
			vals := make([]float64, 6)
			for k := 0; k < 6; k++ {
				vals[k], err = strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("md: bad xyz number %q: %w", fields[k+1], err)
				}
			}
			frame.Species = append(frame.Species, sp)
			frame.Pos = append(frame.Pos, Vec3{vals[0], vals[1], vals[2]})
			frame.Frc = append(frame.Frc, Vec3{vals[3], vals[4], vals[5]})
		}
		frames = append(frames, frame)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return frames, nil
}

// parseXYZComment extracts the cubic box side and energy.
func parseXYZComment(line string) (box, energy float64, err error) {
	if i := strings.Index(line, `Lattice="`); i >= 0 {
		rest := line[i+len(`Lattice="`):]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			fields := strings.Fields(rest[:j])
			if len(fields) == 9 {
				box, err = strconv.ParseFloat(fields[0], 64)
				if err != nil {
					return 0, 0, fmt.Errorf("md: bad xyz lattice: %w", err)
				}
			}
		}
	}
	if i := strings.Index(line, "energy="); i >= 0 {
		rest := line[i+len("energy="):]
		end := strings.IndexAny(rest, " \t")
		if end < 0 {
			end = len(rest)
		}
		energy, err = strconv.ParseFloat(rest[:end], 64)
		if err != nil {
			return 0, 0, fmt.Errorf("md: bad xyz energy: %w", err)
		}
	}
	return box, energy, nil
}

// SpeciesBySymbol resolves an element symbol.
func SpeciesBySymbol(sym string) (Species, error) {
	switch sym {
	case "Al":
		return Al, nil
	case "K":
		return K, nil
	case "Cl":
		return Cl, nil
	}
	return 0, fmt.Errorf("md: unknown species symbol %q", sym)
}
