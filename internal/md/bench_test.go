package md

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// BenchmarkForceComputeAblation compares the cell-list neighbour search
// against the O(N²) pair loop on the paper's 160-atom system — the
// ablation justifying cell lists in the data-generation substrate.
func BenchmarkForceComputeAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	for _, brute := range []bool{false, true} {
		name := "celllist"
		if brute {
			name = "bruteforce"
		}
		b.Run(name, func(b *testing.B) {
			pot := NewPaperBMH(5.0)
			pot.SetBruteForce(brute)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pot.Compute(sys)
			}
		})
	}
}

func BenchmarkMDStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sys := NewSystem(rng, PaperComposition(), 17.84, 498)
	pot := NewPaperBMH(5.0)
	it := NewIntegrator(pot, Berendsen{T: 498, Tau: 50}, 0.5)
	pot.Compute(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step(sys)
	}
}

func BenchmarkMDStepBySystemSize(b *testing.B) {
	for _, mult := range []int{1, 2, 4} {
		var species []Species
		for i := 0; i < mult; i++ {
			species = append(species, PaperComposition()...)
		}
		box := 17.84 * math.Cbrt(float64(mult))
		b.Run(fmt.Sprintf("atoms=%d", len(species)), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			sys := NewSystem(rng, species, box, 498)
			pot := NewPaperBMH(5.0)
			it := NewIntegrator(pot, nil, 0.5)
			pot.Compute(sys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it.Step(sys)
			}
		})
	}
}
