package md

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestXYZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := NewSystem(rng, []Species{Al, K, Cl, Cl}, 8.0, 300)
	pot := NewPaperBMH(4.0)
	pot.Compute(sys)

	var buf bytes.Buffer
	if err := WriteXYZ(&buf, sys); err != nil {
		t.Fatalf("WriteXYZ: %v", err)
	}
	// Advance and write a second frame.
	it := NewIntegrator(pot, nil, 0.5)
	it.Run(sys, 5, 0, nil)
	if err := WriteXYZ(&buf, sys); err != nil {
		t.Fatal(err)
	}

	frames, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatalf("ReadXYZ: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	f := frames[1]
	if len(f.Species) != 4 || f.Species[0] != Al || f.Species[3] != Cl {
		t.Errorf("species = %v", f.Species)
	}
	if f.Box != 8.0 {
		t.Errorf("box = %v", f.Box)
	}
	if math.Abs(f.Energy-sys.PotEng) > 1e-8 {
		t.Errorf("energy = %v, want %v", f.Energy, sys.PotEng)
	}
	for i := range f.Pos {
		if f.Pos[i].Sub(sys.Pos[i]).Norm() > 1e-7 {
			t.Fatalf("position %d mismatch", i)
		}
		if f.Frc[i].Sub(sys.Frc[i]).Norm() > 1e-7 {
			t.Fatalf("force %d mismatch", i)
		}
	}
}

func TestReadXYZRejectsMalformed(t *testing.T) {
	cases := []string{
		"x\n",
		"2\ncomment only\nAl 0 0 0 0 0 0\n", // truncated
		"1\nLattice=\"8 0 0 0 8 0 0 0 8\" energy=1\nXx 0 0 0 0 0 0\n", // unknown species
		"1\nLattice=\"8 0 0 0 8 0 0 0 8\" energy=1\nAl 0 0\n",         // short line
		"1\nLattice=\"8 0 0 0 8 0 0 0 8\" energy=abc\nAl 0 0 0 0 0 0\n",
	}
	for i, c := range cases {
		if _, err := ReadXYZ(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSpeciesBySymbol(t *testing.T) {
	for _, sp := range []Species{Al, K, Cl} {
		got, err := SpeciesBySymbol(sp.String())
		if err != nil || got != sp {
			t.Errorf("SpeciesBySymbol(%v) = %v, %v", sp, got, err)
		}
	}
	if _, err := SpeciesBySymbol("Na"); err == nil {
		t.Error("unknown symbol accepted")
	}
}
