package md

import (
	"fmt"
	"math"
)

// Potential evaluates the potential energy and forces of a system.
type Potential interface {
	// Compute fills sys.Frc and sys.PotEng.
	Compute(sys *System)
	// Cutoff returns the interaction cutoff in Å.
	Cutoff() float64
}

// BMHParams holds Born–Mayer–Huggins pair parameters for one species pair:
// U(r) = A·exp((σ − r)/ρ) − C/r⁶ plus shifted-force Coulomb.
type BMHParams struct {
	A     float64 // repulsion strength, eV
	Rho   float64 // repulsion softness, Å
	Sigma float64 // contact distance, Å
	C     float64 // dispersion coefficient, eV·Å⁶
}

// BMH is a rigid-ion Born–Mayer–Huggins potential with damped shifted-
// force Coulomb electrostatics (Fennell & Gezelter style), which conserves
// energy without an Ewald sum — adequate for generating training
// configurations, the potential's only job here.
type BMH struct {
	Pairs  [NumSpecies][NumSpecies]BMHParams
	RCut   float64
	useN2  bool // force O(N²) pair loop instead of cell lists (ablation)
	sfE    float64
	sfF    float64
	charge [NumSpecies]float64
}

// ionicRadii are effective ionic radii in Å used to build contact
// distances; these are synthetic parameters in the Tosi–Fumi spirit, not a
// fit to any published salt model.
var ionicRadii = [NumSpecies]float64{
	Al: 0.68,
	K:  1.52,
	Cl: 1.67,
}

// NewPaperBMH builds the molten AlCl₃/KCl potential used to generate
// training data, with interaction cutoff rcut (Å).
func NewPaperBMH(rcut float64) *BMH {
	b := &BMH{RCut: rcut}
	const (
		aRep = 0.30 // eV, overall repulsion scale
		rho  = 0.33 // Å, Tosi–Fumi-like softness
	)
	for i := Species(0); i < NumSpecies; i++ {
		b.charge[i] = i.Charge()
		for j := Species(0); j < NumSpecies; j++ {
			sigma := ionicRadii[i] + ionicRadii[j]
			// Dispersion only between anions and between anion/cation
			// pairs; small, to keep the melt liquid-like but stable.
			c6 := 15.0 * math.Pow(sigma/3.3, 6)
			b.Pairs[i][j] = BMHParams{A: aRep, Rho: rho, Sigma: sigma, C: c6}
		}
	}
	// Shifted-force constants so both the Coulomb energy and force go to
	// zero continuously at the cutoff: U_sf(r) = k q q [1/r − 1/rc + (r −
	// rc)/rc²].
	b.sfE = 1 / rcut
	b.sfF = 1 / (rcut * rcut)
	return b
}

// Cutoff implements Potential.
func (b *BMH) Cutoff() float64 { return b.RCut }

// SetBruteForce toggles the O(N²) pair loop; cell lists are the default.
func (b *BMH) SetBruteForce(on bool) { b.useN2 = on }

// PairEnergyForce returns the pair energy and the magnitude dU/dr for
// species si, sj at separation r (r ≤ cutoff assumed).
func (b *BMH) PairEnergyForce(si, sj Species, r float64) (u, dudr float64) {
	p := b.Pairs[si][sj]
	exp := p.A * math.Exp((p.Sigma-r)/p.Rho)
	r2 := r * r
	r6 := r2 * r2 * r2
	qq := CoulombK * b.charge[si] * b.charge[sj]
	u = exp - p.C/r6 + qq*(1/r-b.sfE+(r-b.RCut)*b.sfF)
	dudr = -exp/p.Rho + 6*p.C/(r6*r) + qq*(-1/r2+b.sfF)
	return u, dudr
}

// Compute implements Potential, filling forces and potential energy.
func (b *BMH) Compute(sys *System) {
	n := sys.N()
	for i := range sys.Frc {
		sys.Frc[i] = Vec3{}
	}
	sys.PotEng = 0
	sys.Virial = 0

	visit := func(i, j int) {
		d := sys.Displacement(i, j)
		r2 := d.Dot(d)
		if r2 >= b.RCut*b.RCut || r2 == 0 {
			return
		}
		r := math.Sqrt(r2)
		u, dudr := b.PairEnergyForce(sys.Species[i], sys.Species[j], r)
		sys.PotEng += u
		sys.Virial += -dudr * r
		// F_i = -dU/dr · d(r)/d(pos_i); d points from i to j, so the force
		// on i along -d̂ for repulsive (positive dudr means U increasing
		// with r → attraction pulling i toward j).
		f := d.Scale(dudr / r)
		sys.Frc[i] = sys.Frc[i].Add(f)
		sys.Frc[j] = sys.Frc[j].Sub(f)
	}

	if b.useN2 || b.RCut*3 > sys.Box {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				visit(i, j)
			}
		}
		return
	}
	forEachPairCellList(sys, b.RCut, visit)
}

// PotentialEnergyAt evaluates only the energy for an arbitrary position
// set (used by finite-difference force tests).
func (b *BMH) PotentialEnergyAt(sys *System, pos []Vec3) float64 {
	saved := sys.Pos
	sys.Pos = pos
	defer func() { sys.Pos = saved }()
	e := 0.0
	n := sys.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sys.Displacement(i, j)
			r2 := d.Dot(d)
			if r2 >= b.RCut*b.RCut || r2 == 0 {
				continue
			}
			u, _ := b.PairEnergyForce(sys.Species[i], sys.Species[j], math.Sqrt(r2))
			e += u
		}
	}
	return e
}

// forEachPairCellList enumerates unique pairs within rcut using a linked-
// cell decomposition, the standard O(N) neighbour search for short-ranged
// MD.
func forEachPairCellList(sys *System, rcut float64, visit func(i, j int)) {
	ncell := int(sys.Box / rcut)
	if ncell < 3 {
		// Cell list degenerates; caller should have used the N² path.
		n := sys.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				visit(i, j)
			}
		}
		return
	}
	cellSize := sys.Box / float64(ncell)
	nc3 := ncell * ncell * ncell
	heads := make([]int, nc3)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int, sys.N())

	cellOf := func(p Vec3) int {
		cx := int(p[0]/cellSize) % ncell
		cy := int(p[1]/cellSize) % ncell
		cz := int(p[2]/cellSize) % ncell
		if cx < 0 {
			cx += ncell
		}
		if cy < 0 {
			cy += ncell
		}
		if cz < 0 {
			cz += ncell
		}
		return (cz*ncell+cy)*ncell + cx
	}
	// Positions may lie outside [0, Box); wrap per-coordinate for binning.
	for i := range sys.Pos {
		p := sys.Pos[i]
		for k := 0; k < 3; k++ {
			p[k] -= sys.Box * math.Floor(p[k]/sys.Box)
		}
		c := cellOf(p)
		next[i] = heads[c]
		heads[c] = i
	}

	for cz := 0; cz < ncell; cz++ {
		for cy := 0; cy < ncell; cy++ {
			for cx := 0; cx < ncell; cx++ {
				c := (cz*ncell+cy)*ncell + cx
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx := (cx + dx + ncell) % ncell
							ny := (cy + dy + ncell) % ncell
							nz := (cz + dz + ncell) % ncell
							nb := (nz*ncell+ny)*ncell + nx
							if nb < c {
								continue // each cell pair once
							}
							for i := heads[c]; i >= 0; i = next[i] {
								start := heads[nb]
								if nb == c {
									start = next[i] // unique pairs within a cell
								}
								for j := start; j >= 0; j = next[j] {
									visit(i, j)
								}
							}
						}
					}
				}
			}
		}
	}
}

// Validate sanity-checks parameters.
func (b *BMH) Validate() error {
	if b.RCut <= 0 {
		return fmt.Errorf("md: cutoff %v must be positive", b.RCut)
	}
	for i := Species(0); i < NumSpecies; i++ {
		for j := Species(0); j < NumSpecies; j++ {
			p := b.Pairs[i][j]
			if p.Rho <= 0 || p.A < 0 {
				return fmt.Errorf("md: bad BMH parameters for %v-%v: %+v", i, j, p)
			}
		}
	}
	return nil
}
