// Package active implements a DP-GEN-style active-learning loop around
// the deep-potential trainer: train a model committee on a small labeled
// set, explore with committee-driven MD, select configurations whose
// force-prediction disagreement falls in a trust window, label them with
// the reference potential (the CP2K stand-in), and retrain.  This is the
// "on-the-fly machine learning force field generation" of the paper's
// ref. [18] and the natural production workflow around the tuned
// hyperparameters the paper's campaign delivers.
package active

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/md"
)

// Config parameterizes the loop.
type Config struct {
	// EnsembleSize is the committee size (DP-GEN uses 4).
	EnsembleSize int
	// Model is the shared architecture.
	Model deepmd.ModelConfig
	// Train is the per-round training configuration.
	Train deepmd.TrainConfig
	// Rounds is the number of explore→select→label→retrain iterations.
	Rounds int
	// InitialFrames seeds the labeled set from reference MD.
	InitialFrames int
	// ExploreSteps is the committee-MD length per round.
	ExploreSteps int
	// SampleEvery is the exploration sampling stride.
	SampleEvery int
	// DevLo and DevHi bound the trust window (eV/Å): deviations below
	// DevLo are already learned, above DevHi are too unphysical to label
	// (DP-GEN's lower/upper trust levels).
	DevLo, DevHi float64
	// MaxSelectPerRound caps labeling cost per round.
	MaxSelectPerRound int
	// Temperature and Dt drive the exploration dynamics.
	Temperature float64
	Dt          float64
	// ValFraction of every labeling batch is withheld for validation.
	ValFraction float64
	Seed        int64
}

// RoundReport records one iteration.
type RoundReport struct {
	Round         int
	TrainFrames   int
	Candidates    int // configurations inside the trust window
	Selected      int // actually labeled and added
	AboveTrust    int // deviation above DevHi (discarded)
	MeanDeviation float64
	ValEnergyRMSE float64
	ValForceRMSE  float64
}

// Report summarizes a full loop.
type Report struct {
	Rounds   []RoundReport
	Ensemble *deepmd.Ensemble
	Train    *dataset.Dataset
	Val      *dataset.Dataset
}

// Render formats the per-round table.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("Active-learning rounds (DP-GEN style)\n")
	fmt.Fprintf(&b, "%5s %8s %10s %9s %7s %9s %11s %11s\n",
		"round", "frames", "candidates", "selected", "above", "mean dev", "val rmse_e", "val rmse_f")
	for _, rr := range r.Rounds {
		fmt.Fprintf(&b, "%5d %8d %10d %9d %7d %9.4f %11.4g %11.4g\n",
			rr.Round, rr.TrainFrames, rr.Candidates, rr.Selected, rr.AboveTrust,
			rr.MeanDeviation, rr.ValEnergyRMSE, rr.ValForceRMSE)
	}
	return b.String()
}

// Run executes the loop with the given reference potential as labeler.
func Run(ctx context.Context, species []md.Species, box float64, refPot md.Potential, cfg Config) (*Report, error) {
	if cfg.EnsembleSize < 2 || cfg.Rounds < 1 || cfg.InitialFrames < 2 {
		return nil, fmt.Errorf("active: invalid config %+v", cfg)
	}
	if cfg.ValFraction <= 0 {
		cfg.ValFraction = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Round 0 data: short reference-potential MD, exactly like the
	// paper's initial FPMD dataset but smaller.
	data := dataset.Generate(rng, species, box, cfg.Temperature, refPot,
		cfg.Dt, 100, cfg.SampleEvery, cfg.InitialFrames)
	data.Shuffle(rng)
	train, val := data.Split(cfg.ValFraction)
	// Own the slices so later appends cannot clobber the validation set.
	train = &dataset.Dataset{Types: data.Types, Frames: append([]dataset.Frame{}, train.Frames...)}
	val = &dataset.Dataset{Types: data.Types, Frames: append([]dataset.Frame{}, val.Frames...)}

	ens, err := deepmd.NewEnsemble(rng, cfg.Model, cfg.EnsembleSize)
	if err != nil {
		return nil, err
	}
	report := &Report{Ensemble: ens, Train: train, Val: val}

	for round := 0; round < cfg.Rounds; round++ {
		if err := ens.TrainAll(ctx, train, val, cfg.Train); err != nil {
			return report, err
		}
		rr := RoundReport{Round: round, TrainFrames: train.Len()}
		rr.ValEnergyRMSE, rr.ValForceRMSE = deepmd.EvalErrors(ens.Models[0], val, 0)

		// Explore with committee-mean dynamics, harvesting configurations
		// whose disagreement lands inside the trust window.
		sys := md.NewSystem(rng, species, box, cfg.Temperature)
		pot := &deepmd.EnsemblePotential{Ensemble: ens}
		thermo := md.Langevin{T: cfg.Temperature, Gamma: 0.05, Rng: rng}
		it := md.NewIntegrator(pot, thermo, cfg.Dt)
		var devSum float64
		var devCount int
		var newFrames []dataset.Frame
		it.Run(sys, cfg.ExploreSteps, cfg.SampleEvery, func(step int) {
			dev := pot.LastDeviation
			devSum += dev
			devCount++
			switch {
			case dev >= cfg.DevHi:
				rr.AboveTrust++
			case dev >= cfg.DevLo:
				rr.Candidates++
				if rr.Selected < cfg.MaxSelectPerRound {
					// Label with the reference potential (the DFT stand-in).
					ref := &md.System{Box: sys.Box, Species: sys.Species,
						Pos: append([]md.Vec3{}, sys.Pos...),
						Vel: make([]md.Vec3, sys.N()), Frc: make([]md.Vec3, sys.N())}
					refPot.Compute(ref)
					newFrames = append(newFrames, dataset.FrameFromSystem(ref))
					rr.Selected++
				}
			}
		})
		if devCount > 0 {
			rr.MeanDeviation = devSum / float64(devCount)
		}
		train.Frames = append(train.Frames, newFrames...)
		report.Rounds = append(report.Rounds, rr)
		if err := ctx.Err(); err != nil {
			return report, err
		}
	}
	return report, nil
}
