package active

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/deepmd"
	"repro/internal/descriptor"
	"repro/internal/md"
	"repro/internal/nn"
)

func tinyConfig() Config {
	return Config{
		EnsembleSize: 2,
		Model: deepmd.ModelConfig{
			Descriptor: descriptor.Config{
				RCut: 3.5, RCutSmth: 1.5,
				EmbeddingSizes: []int{3, 6}, AxisNeurons: 2,
				Activation: nn.Tanh, NumSpecies: 3, NeighborNorm: 5,
			},
			FittingSizes:      []int{8},
			FittingActivation: nn.Tanh,
			NumSpecies:        3,
		},
		Train: deepmd.TrainConfig{
			Steps: 40, BatchSize: 1, StartLR: 0.005, StopLR: 1e-4,
			ScaleByWorker: "none", Workers: 1, DispFreq: 40, ValFrames: 2,
		},
		Rounds: 2, InitialFrames: 8,
		ExploreSteps: 60, SampleEvery: 10,
		DevLo: 0.0, DevHi: 1e9, // accept everything: tiny models disagree a lot
		MaxSelectPerRound: 3,
		Temperature:       400, Dt: 0.4,
		Seed: 5,
	}
}

var testSpecies = []md.Species{md.Al, md.Cl, md.Cl, md.Cl, md.K, md.Cl}

func TestActiveLearningLoopGrowsDataset(t *testing.T) {
	cfg := tinyConfig()
	rep, err := Run(context.Background(), testSpecies, 7.0, md.NewPaperBMH(3.5), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("got %d rounds", len(rep.Rounds))
	}
	r0, r1 := rep.Rounds[0], rep.Rounds[1]
	if r0.Selected == 0 {
		t.Error("round 0 selected nothing despite open trust window")
	}
	if r1.TrainFrames != r0.TrainFrames+r0.Selected {
		t.Errorf("dataset did not grow by selections: %d -> %d (+%d)",
			r0.TrainFrames, r1.TrainFrames, r0.Selected)
	}
	if r0.MeanDeviation <= 0 {
		t.Error("no model deviation recorded")
	}
	if r0.ValForceRMSE <= 0 {
		t.Error("validation errors not recorded")
	}
	if !strings.Contains(rep.Render(), "Active-learning") {
		t.Error("render missing header")
	}
}

func TestTrustWindowFilters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rounds = 1
	cfg.DevLo = 1e8 // window far above any deviation: nothing selected
	cfg.DevHi = 1e9
	rep, err := Run(context.Background(), testSpecies, 7.0, md.NewPaperBMH(3.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds[0].Selected != 0 || rep.Rounds[0].Candidates != 0 {
		t.Errorf("selections despite impossible window: %+v", rep.Rounds[0])
	}
	cfg.DevLo = 0
	cfg.DevHi = 1e-12 // everything above trust: all discarded
	rep, err = Run(context.Background(), testSpecies, 7.0, md.NewPaperBMH(3.5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds[0].AboveTrust == 0 {
		t.Error("no above-trust configurations with near-zero DevHi")
	}
	if rep.Rounds[0].Selected != 0 {
		t.Error("selected configurations above the trust ceiling")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.EnsembleSize = 1
	if _, err := Run(context.Background(), testSpecies, 7.0, md.NewPaperBMH(3.5), cfg); err == nil {
		t.Error("ensemble of 1 accepted")
	}
}

func TestEnsemblePredictDeviation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := tinyConfig()
	ens, err := deepmd.NewEnsemble(rng, cfg.Model, 3)
	if err != nil {
		t.Fatal(err)
	}
	pot := md.NewPaperBMH(3.5)
	data := dataset.Generate(rng, testSpecies, 7.0, 400, pot, 0.4, 40, 5, 2)
	fr := &data.Frames[0]
	e, f, dev := ens.Predict(fr.Coord, data.Types, fr.Box)
	if len(f) != len(fr.Coord) {
		t.Fatalf("forces length %d", len(f))
	}
	if dev <= 0 {
		t.Error("independently initialized models show zero deviation")
	}
	_ = e
	// Mean must equal the average of the member predictions.
	var sum float64
	for _, m := range ens.Models {
		em := m.Energy(fr.Coord, data.Types, fr.Box)
		sum += em
	}
	if diff := sum/3 - e; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mean energy mismatch: %v", diff)
	}
}
